package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter with atomic updates.
// Updates are dropped while instrumentation is disabled, keeping the
// hot path free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n when instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins instrument (e.g. worker count, cache
// size) with atomic updates.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge value when instrumentation is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta when instrumentation is enabled.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets; bucket
// i holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). 64 buckets cover the whole int64 range.
const histBuckets = 65

// Histogram records a distribution of non-negative int64 observations
// (by convention nanoseconds for latencies) in power-of-two buckets
// with exact count, sum, min and max. All updates are atomic. Obtain
// histograms from a Registry (or NewHistogram), which initializes the
// min tracker.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first observation
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram creates a standalone histogram (registry histograms are
// created the same way).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one observation when instrumentation is enabled.
// Negative observations clamp to zero.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if !enabled.Load() {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time summary of a histogram. Times
// are nanoseconds when the histogram records durations. Quantiles are
// bucket-resolution estimates (power-of-two buckets), clamped to the
// exact observed min/max.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	s.P50 = quantile(counts[:], s.Count, 0.50, s.Min, s.Max)
	s.P95 = quantile(counts[:], s.Count, 0.95, s.Min, s.Max)
	s.P99 = quantile(counts[:], s.Count, 0.99, s.Min, s.Max)
	return s
}

// quantile estimates the q-quantile from power-of-two bucket counts,
// returning the upper bound of the bucket where the cumulative count
// crosses q, clamped to [min, max].
func quantile(counts []int64, total int64, q float64, min, max int64) int64 {
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			var upper int64
			if i == 0 {
				upper = 0
			} else if i >= 63 {
				upper = math.MaxInt64
			} else {
				upper = (int64(1) << uint(i)) - 1
			}
			if upper < min {
				upper = min
			}
			if upper > max {
				upper = max
			}
			return upper
		}
	}
	return max
}

// Registry is a named collection of instruments. Instruments are
// created on first use and live for the registry's lifetime; lookup
// is read-locked and instruments are cached by callers, so steady
// state updates never touch the registry lock.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry used by the engine.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = NewHistogram()
	r.histograms[name] = h
	return h
}

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// Snapshot is a point-in-time view of a registry, ready for JSON
// encoding or programmatic scraping. Zero-valued instruments are
// omitted so phase snapshots only carry what the phase touched.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{}
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			if out.Counters == nil {
				out.Counters = map[string]int64{}
			}
			out.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			if out.Gauges == nil {
				out.Gauges = map[string]int64{}
			}
			out.Gauges[name] = v
		}
	}
	for name, h := range r.histograms {
		if s := h.Snapshot(); s.Count != 0 {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			out.Histograms[name] = s
		}
	}
	return out
}

// Reset zeroes every instrument in place (instrument pointers held by
// callers stay valid). Used between benchmark phases.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// SnapshotDefault captures the default registry.
func SnapshotDefault() Snapshot { return defaultRegistry.Snapshot() }

// ResetDefault zeroes the default registry.
func ResetDefault() { defaultRegistry.Reset() }
