// Package obs is the engine-wide observability core: hierarchical
// tracing spans, a metrics registry of counters, gauges and latency
// histograms, and opt-in profiling endpoints. It is zero-dependency
// (standard library only), concurrency-safe, and free when disabled:
// every entry point is guarded by an atomic Enabled() check and the
// disabled path performs no allocation (see BenchmarkSpanDisabled).
//
// Spans propagate through context.Context:
//
//	ctx, span := obs.StartSpan(ctx, "fd.compute")
//	span.SetStr("algo", "outer_join")
//	defer span.End()
//
// A nil *Span is a valid no-op receiver, so callers never need to
// check whether tracing is on. When a root span (one with no parent in
// its context) ends, the finished span tree is handed to the process
// exporter (SetExporter); the default exporter discards it.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the master switch. All instrumentation no-ops while it
// is false.
var enabled atomic.Bool

// Enabled reports whether instrumentation is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips the master instrumentation switch.
func SetEnabled(on bool) { enabled.Store(on) }

// AttrKind discriminates the typed attribute payload.
type AttrKind uint8

// Attribute kinds.
const (
	KindStr AttrKind = iota
	KindInt
	KindBool
)

// Attr is one typed span attribute. Typed setters (SetInt, SetStr,
// SetBool) avoid interface boxing so the disabled path allocates
// nothing.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
	Bool bool
}

// Value returns the attribute payload as an interface value (used by
// exporters; allocates, so only called when tracing is on).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindBool:
		return a.Bool
	default:
		return a.Str
	}
}

// SpanData is the immutable record of a finished (or in-flight) span.
// Exporters receive the root SpanData of each completed trace.
type SpanData struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Children []*SpanData
}

// Span is a live tracing span. The zero value is not usable; obtain
// spans from StartSpan. A nil *Span is a no-op.
type Span struct {
	data   *SpanData
	parent *Span
	mu     sync.Mutex
	ended  bool
}

type ctxKey struct{}

// spanFrom extracts the active span from ctx, or nil.
func spanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// CurrentSpan returns the span carried by ctx, or nil. Useful for
// attaching attributes to an enclosing span without starting a new
// one.
func CurrentSpan(ctx context.Context) *Span { return spanFrom(ctx) }

// StartSpan starts a span named name as a child of the span carried by
// ctx (a root span when ctx carries none) and returns a derived
// context carrying the new span. When instrumentation is disabled it
// returns ctx unchanged and a nil span, without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent := spanFrom(ctx)
	s := &Span{
		data:   &SpanData{Name: name, Start: time.Now()},
		parent: parent,
	}
	if parent != nil {
		parent.mu.Lock()
		parent.data.Children = append(parent.data.Children, s.data)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SetInt attaches an integer attribute. No-op on a nil span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: KindInt, Int: v})
	s.mu.Unlock()
}

// SetStr attaches a string attribute. No-op on a nil span.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: KindStr, Str: v})
	s.mu.Unlock()
}

// SetBool attaches a boolean attribute. No-op on a nil span.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: KindBool, Bool: v})
	s.mu.Unlock()
}

// Data returns the span's underlying record. The tree is still mutable
// until the span (and, for children, its ancestors) have ended; callers
// that hold the returned pointer must only read it after End. No-op
// (nil) on a nil span.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	return s.data
}

// End finishes the span, recording its duration. Ending a root span
// hands the completed tree to the process exporter. End is idempotent
// and a no-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	root := s.parent == nil
	data := s.data
	s.mu.Unlock()
	if root {
		if e := currentExporter(); e != nil {
			e.ExportRoot(data)
		}
	}
}
