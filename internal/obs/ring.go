package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceBuffer is an always-on, bounded retention store for completed
// span trees: it keeps the N most recent traces (a ring that overwrites
// oldest-first) and, separately, the N slowest traces seen so far, so a
// latency spike stays inspectable even after the ring has churned past
// it. Installed as the process exporter it makes traces queryable after
// the fact — no "restart with --trace and reproduce" required. Memory
// is bounded by 2N retained trees; everything else is evicted.
//
// A TraceBuffer can wrap another exporter (next): every root is
// retained and forwarded, so streaming exporters (--trace) keep
// working when a server installs its buffer.
type TraceBuffer struct {
	mu      sync.Mutex
	cap     int
	recent  []*Trace // ring; pos is the next overwrite index once full
	pos     int
	slowest []*Trace // sorted by Duration descending
	byID    map[string]*Trace
	refs    map[string]int // list memberships per ID; 0 drops the index entry
	next    Exporter
}

// Trace is one retained span tree with its identity and summary.
type Trace struct {
	ID       string
	Name     string
	Start    time.Time
	Duration time.Duration
	Spans    int
	Root     *SpanData
}

// NewTraceBuffer returns a buffer retaining up to cap recent and cap
// slowest traces (minimum 1), forwarding every root to next when next
// is non-nil.
func NewTraceBuffer(cap int, next Exporter) *TraceBuffer {
	if cap < 1 {
		cap = 1
	}
	return &TraceBuffer{
		cap:  cap,
		byID: map[string]*Trace{},
		refs: map[string]int{},
		next: next,
	}
}

// Next returns the wrapped downstream exporter, or nil.
func (b *TraceBuffer) Next() Exporter { return b.next }

// ExportRoot retains the completed tree and forwards it downstream.
// The trace ID is the root's "trace_id" attribute when present (the
// serving layer stamps it), otherwise a fresh synthetic ID.
func (b *TraceBuffer) ExportRoot(root *SpanData) {
	id := ""
	for _, a := range root.Attrs {
		if a.Key == "trace_id" && a.Kind == KindStr {
			id = a.Str
		}
	}
	if id == "" {
		id = NewTraceID()
	}
	tr := &Trace{
		ID:       id,
		Name:     root.Name,
		Start:    root.Start,
		Duration: root.Duration,
		Spans:    countSpans(root),
		Root:     root,
	}
	b.mu.Lock()
	b.insertRecentLocked(tr)
	b.insertSlowestLocked(tr)
	b.mu.Unlock()
	if b.next != nil {
		b.next.ExportRoot(root)
	}
}

func countSpans(s *SpanData) int {
	n := 1
	for _, c := range s.Children {
		n += countSpans(c)
	}
	return n
}

func (b *TraceBuffer) retainLocked(tr *Trace) {
	b.refs[tr.ID]++
	b.byID[tr.ID] = tr
}

func (b *TraceBuffer) releaseLocked(tr *Trace) {
	b.refs[tr.ID]--
	if b.refs[tr.ID] <= 0 {
		delete(b.refs, tr.ID)
		delete(b.byID, tr.ID)
	}
}

func (b *TraceBuffer) insertRecentLocked(tr *Trace) {
	if len(b.recent) < b.cap {
		b.recent = append(b.recent, tr)
	} else {
		b.releaseLocked(b.recent[b.pos])
		b.recent[b.pos] = tr
		b.pos = (b.pos + 1) % b.cap
	}
	b.retainLocked(tr)
}

func (b *TraceBuffer) insertSlowestLocked(tr *Trace) {
	if len(b.slowest) >= b.cap {
		last := b.slowest[len(b.slowest)-1]
		if tr.Duration <= last.Duration {
			return
		}
		b.slowest = b.slowest[:len(b.slowest)-1]
		b.releaseLocked(last)
	}
	i := sort.Search(len(b.slowest), func(i int) bool {
		return b.slowest[i].Duration < tr.Duration
	})
	b.slowest = append(b.slowest, nil)
	copy(b.slowest[i+1:], b.slowest[i:])
	b.slowest[i] = tr
	b.retainLocked(tr)
}

// Get returns the retained trace with the given ID, or nil.
func (b *TraceBuffer) Get(id string) *Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.byID[id]
}

// Recent returns the retained recent traces, newest first.
func (b *TraceBuffer) Recent() []*Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Trace, 0, len(b.recent))
	// The ring is oldest at pos (once full); walk backwards from the
	// most recently written slot.
	for i := 0; i < len(b.recent); i++ {
		idx := (b.pos - 1 - i + len(b.recent)*2) % len(b.recent)
		if len(b.recent) < b.cap {
			// Not yet wrapped: slots fill in order, newest last.
			idx = len(b.recent) - 1 - i
		}
		out = append(out, b.recent[idx])
	}
	return out
}

// Slowest returns the retained slowest traces, slowest first.
func (b *TraceBuffer) Slowest() []*Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*Trace(nil), b.slowest...)
}

// Cap returns the per-list retention bound.
func (b *TraceBuffer) Cap() int { return b.cap }

// Len returns the number of distinct retained traces.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.byID)
}
