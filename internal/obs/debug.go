package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the one-time expvar publication of the default
// registry (expvar panics on duplicate names).
var publishOnce sync.Once

// publishExpvar exposes the default registry's snapshot under the
// expvar name "clio.metrics".
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("clio.metrics", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}

// DebugServer is a running debug/profiling endpoint; Close shuts it
// down.
type DebugServer struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts an HTTP server on addr exposing the metrics
// registry over expvar (/debug/vars, including "clio.metrics") and the
// runtime profiler (/debug/pprof/...). It is strictly opt-in: nothing
// listens unless this is called. The server runs until Close.
func ServeDebug(addr string) (*DebugServer, error) {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the debug server.
func (d *DebugServer) Close() error {
	return d.srv.Close()
}
