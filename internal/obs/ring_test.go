package obs

import (
	"fmt"
	"testing"
	"time"
)

func mkTrace(id string, dur time.Duration) *SpanData {
	return &SpanData{
		Name:     "req",
		Duration: dur,
		Attrs:    []Attr{{Key: "trace_id", Kind: KindStr, Str: id}},
		Children: []*SpanData{{Name: "child"}},
	}
}

func TestTraceBufferRecentEvictsOldest(t *testing.T) {
	b := NewTraceBuffer(3, nil)
	for i := 0; i < 5; i++ {
		b.ExportRoot(mkTrace(fmt.Sprintf("id%d", i), time.Duration(i)))
	}
	rec := b.Recent()
	if len(rec) != 3 {
		t.Fatalf("got %d recent traces, want 3", len(rec))
	}
	for i, want := range []string{"id4", "id3", "id2"} {
		if rec[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, rec[i].ID, want)
		}
	}
	if b.Get("id0") != nil || b.Get("id1") != nil {
		t.Error("evicted traces still resolvable by ID")
	}
}

func TestTraceBufferSlowestRetainedPastRingChurn(t *testing.T) {
	b := NewTraceBuffer(2, nil)
	b.ExportRoot(mkTrace("spike", time.Second))
	// Churn the recent ring well past the spike.
	for i := 0; i < 10; i++ {
		b.ExportRoot(mkTrace(fmt.Sprintf("fast%d", i), time.Millisecond))
	}
	tr := b.Get("spike")
	if tr == nil {
		t.Fatal("slow trace evicted despite slowest retention")
	}
	if tr.Spans != 2 {
		t.Errorf("spike trace has %d spans, want 2", tr.Spans)
	}
	slow := b.Slowest()
	if len(slow) != 2 || slow[0].ID != "spike" {
		t.Fatalf("slowest = %v, want spike first", slow)
	}
	// A faster-than-threshold trace must not displace retained slow ones.
	b.ExportRoot(mkTrace("alsofast", time.Microsecond))
	if b.Get("spike") == nil {
		t.Error("fast trace displaced the retained spike")
	}
}

func TestTraceBufferSynthesizesMissingID(t *testing.T) {
	b := NewTraceBuffer(2, nil)
	b.ExportRoot(&SpanData{Name: "anon", Duration: time.Millisecond})
	rec := b.Recent()
	if len(rec) != 1 || rec[0].ID == "" {
		t.Fatalf("trace without trace_id attr got no synthetic ID: %+v", rec)
	}
	if b.Get(rec[0].ID) == nil {
		t.Error("synthetic ID not resolvable")
	}
}

func TestTraceBufferForwardsDownstream(t *testing.T) {
	col := &CollectExporter{}
	b := NewTraceBuffer(1, col)
	if b.Next() != col {
		t.Fatal("Next() lost the wrapped exporter")
	}
	b.ExportRoot(mkTrace("x", time.Millisecond))
	if len(col.Roots()) != 1 {
		t.Fatalf("downstream exporter saw %d roots, want 1", len(col.Roots()))
	}
}

func TestTraceIDNilSafety(t *testing.T) {
	if got := TraceID(nil); got != "" {
		t.Errorf("TraceID(nil) = %q, want empty", got)
	}
	ctx := WithTraceID(nil, "abc")
	if got := TraceID(ctx); got != "abc" {
		t.Errorf("TraceID after WithTraceID(nil, abc) = %q", got)
	}
	Note(nil, "k", "v") // must not panic
	ctx2, n := WithNotes(nil)
	Note(ctx2, "dg_cache", "hit")
	if n.Get("dg_cache") != "hit" {
		t.Error("note not readable back")
	}
	var nilNotes *Notes
	if nilNotes.Get("k") != "" {
		t.Error("nil Notes Get not safe")
	}
	a, b := NewTraceID(), NewTraceID()
	if a == b || len(a) != 16 {
		t.Errorf("trace IDs not unique 16-hex: %q %q", a, b)
	}
}
