package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
)

// Request-scoped trace identity. A trace ID names one logical unit of
// work (an HTTP request, a replayed journal op, a benchmark run) so its
// access-log line, response header, op-log records, and retained span
// tree can all be correlated after the fact. The ID travels through
// context.Context alongside the span, but independently of it: code
// that never starts a span (the workspace op log) can still stamp its
// records, and the helpers tolerate nil contexts so replay paths built
// on context.Background() — or on nothing at all — never panic.

type traceIDKey struct{}

// traceSeq backs the fallback ID source if crypto/rand ever fails.
var traceSeq atomic.Int64

// NewTraceID returns a fresh 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t" + strconv.FormatInt(traceSeq.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID. A nil ctx is
// treated as context.Background().
func WithTraceID(ctx context.Context, id string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "". Safe on nil
// contexts.
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// Notes is a request-scoped key/value scratchpad: deep engine layers
// annotate the request (cache hit/miss, algorithm chosen) and the
// serving layer reads the notes back when writing the access log.
// Unlike span attributes, notes are readable by the request's own
// handler after the work is done. Safe for concurrent use.
type Notes struct {
	mu sync.Mutex
	kv map[string]string
}

type notesKey struct{}

// WithNotes returns a context carrying a fresh Notes scratchpad. A nil
// ctx is treated as context.Background().
func WithNotes(ctx context.Context) (context.Context, *Notes) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := &Notes{}
	return context.WithValue(ctx, notesKey{}, n), n
}

// Note records key=value on the context's scratchpad; a no-op (never a
// panic) when ctx is nil or carries no Notes.
func Note(ctx context.Context, key, value string) {
	if ctx == nil {
		return
	}
	n, _ := ctx.Value(notesKey{}).(*Notes)
	if n == nil {
		return
	}
	n.mu.Lock()
	if n.kv == nil {
		n.kv = map[string]string{}
	}
	n.kv[key] = value
	n.mu.Unlock()
}

// GetNote returns the note recorded for key on the context's
// scratchpad, or "" when ctx is nil, carries no Notes, or the key was
// never noted. The read-side counterpart of Note, for layers (the
// watch endpoint) that consume an annotation mid-request rather than
// at access-log time.
func GetNote(ctx context.Context, key string) string {
	if ctx == nil {
		return ""
	}
	n, _ := ctx.Value(notesKey{}).(*Notes)
	return n.Get(key)
}

// Get returns the note for key, or "".
func (n *Notes) Get(key string) string {
	if n == nil {
		return ""
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.kv[key]
}
