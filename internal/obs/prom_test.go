package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.requests":    "clio_serve_requests",
		"fd.cache.hits":     "clio_fd_cache_hits",
		"clio.panics":       "clio_panics",
		"clio_already_fine": "clio_already_fine",
		"weird-name/x":      "clio_weird_name_x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusFormat asserts the rendered exposition parses as
// Prometheus text format 0.0.4: every non-comment line is
// "name[{labels}] value", every series is preceded by a # TYPE line,
// and counters carry the _total suffix.
func TestWritePrometheusFormat(t *testing.T) {
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })

	r := NewRegistry()
	r.Counter("serve.requests").Add(7)
	r.Gauge("serve.in_flight").Set(3)
	h := r.Histogram("serve.request.ns")
	h.Observe(100)
	h.Observe(200)

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot())
	out := b.String()

	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", out)
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("sample line %q: want 'name value'", line)
		}
		name := f[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "\"}") {
				t.Fatalf("malformed labels in %q", line)
			}
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("series %q has no preceding # TYPE line", line)
			}
		}
	}

	for _, want := range []string{
		"# TYPE clio_serve_requests_total counter",
		"clio_serve_requests_total 7",
		"# TYPE clio_serve_in_flight gauge",
		"clio_serve_in_flight 3",
		"# TYPE clio_serve_request_ns summary",
		"clio_serve_request_ns{quantile=\"0.5\"}",
		"clio_serve_request_ns_sum 300",
		"clio_serve_request_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
