package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-exposition rendering (format version 0.0.4) of a
// registry snapshot. Counters render as counters with the conventional
// _total suffix, gauges as gauges, and histograms as summaries: one
// series per p50/p95/p99 quantile plus _sum and _count. Metric names
// are sanitized (dots become underscores) and prefixed clio_ so the
// whole engine scrapes under one namespace. Output is sorted by metric
// name, so scrapes are byte-deterministic for a given snapshot.

// PromName sanitizes an instrument name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_', and the clio_
// prefix is added unless already present.
func PromName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if !strings.HasPrefix(s, "clio_") {
		s = "clio_" + s
	}
	return s
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. The writer's errors are ignored (http.ResponseWriter swallows
// them anyway); rendering itself cannot fail.
func WritePrometheus(w io.Writer, s Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		m := PromName(name)
		if !strings.HasSuffix(m, "_total") {
			m += "_total"
		}
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := PromName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		m := PromName(name)
		h := s.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s summary\n", m)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", m, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %d\n", m, h.P95)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", m, h.P99)
		fmt.Fprintf(w, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
	}
}
