package csvio

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"clio/internal/fault"
	"clio/internal/paperdb"
)

// An injected read fault must surface as a wrapped, typed error from
// ReadRelation, and the next read (point exhausted) must succeed.
func TestChaosReadFaultPropagates(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("csvio.read", fault.Spec{Mode: fault.ModeError, Times: 1})

	src := "ID,name\n001,Ann\n"
	if _, _, err := ReadRelation("Children", strings.NewReader(src)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected read fault not propagated: %v", err)
	}
	rel, _, err := ReadRelation("Children", strings.NewReader(src))
	if err != nil || rel.Len() != 1 {
		t.Fatalf("read after exhausted fault failed: %v", err)
	}
}

// A read fault hitting the middle of a directory load must abort
// LoadDir with the injected error, and a clean retry must load the
// whole instance.
func TestChaosLoadDirModeErrorMidway(t *testing.T) {
	dir := t.TempDir()
	in := paperdb.Instance()
	if err := SaveDir(dir, in); err != nil {
		t.Fatal(err)
	}

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("csvio.read", fault.Spec{Mode: fault.ModeError, After: 2, Times: 1})

	if _, err := LoadDir(dir); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("mid-load fault not propagated: %v", err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("reload after exhausted fault failed: %v", err)
	}
	if got.TotalTuples() != in.TotalTuples() {
		t.Fatalf("reload tuples = %d, want %d", got.TotalTuples(), in.TotalTuples())
	}
}

// An injected write fault must fail SaveDir loudly; the retry must
// produce a directory that round-trips the instance.
func TestChaosWriteFaultFailsSave(t *testing.T) {
	dir := t.TempDir()
	in := paperdb.Instance()

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("csvio.write", fault.Spec{Mode: fault.ModeError, Times: 1})

	if err := SaveDir(dir, in); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected write fault not propagated: %v", err)
	}
	if err := SaveDir(dir, in); err != nil {
		t.Fatalf("save after exhausted fault failed: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(in.Names()) {
		t.Fatalf("files after retry = %d, want %d", len(entries), len(in.Names()))
	}
	got, err := LoadDir(dir)
	if err != nil || got.TotalTuples() != in.TotalTuples() {
		t.Fatalf("round-trip after retry: err=%v tuples=%d", err, got.TotalTuples())
	}
}

// Delay mode must fire without changing results — a slow disk is not
// a failed disk.
func TestChaosReadDelayModeTransparent(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("csvio.read", fault.Spec{Mode: fault.ModeDelay, Delay: time.Millisecond, Times: 1})

	rel, _, err := ReadRelation("X", strings.NewReader("a,b\n1,2\n"))
	if err != nil || rel.Len() != 1 {
		t.Fatalf("delayed read failed: %v", err)
	}
	if fault.Fired("csvio.read") != 1 {
		t.Fatalf("delay point fired %d times, want 1", fault.Fired("csvio.read"))
	}
}
