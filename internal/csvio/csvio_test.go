package csvio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clio/internal/paperdb"
	"clio/internal/value"
)

func TestReadRelation(t *testing.T) {
	src := "ID,name,age\n001,Ann,9\n002,Maya,6\n004,Bo,\n"
	rel, srel, err := ReadRelation("Children", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if rel.Scheme().Name(0) != "Children.ID" {
		t.Errorf("scheme = %v", rel.Scheme())
	}
	if !rel.At(0).Get("Children.ID").Equal(value.String("001")) {
		t.Error("leading-zero ID should stay a string")
	}
	if !rel.At(0).Get("Children.age").Equal(value.Int(9)) {
		t.Error("age should parse as int")
	}
	if !rel.At(2).Get("Children.age").IsNull() {
		t.Error("empty cell should be null")
	}
	if srel.Attrs[2].Type != value.KindInt {
		t.Errorf("inferred age kind = %v", srel.Attrs[2].Type)
	}
}

func TestReadRelationErrors(t *testing.T) {
	if _, _, err := ReadRelation("X", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := ReadRelation("X", strings.NewReader("a,,c\n1,2,3\n")); err == nil {
		t.Error("empty column name should fail")
	}
	if _, _, err := ReadRelation("X", strings.NewReader("a,b\n1,2\n3\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestRoundTripDir(t *testing.T) {
	dir := t.TempDir()
	in := paperdb.Instance()
	if err := SaveDir(dir, in); err != nil {
		t.Fatal(err)
	}
	// All five relations written.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 5 {
		t.Fatalf("files = %d", len(entries))
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range in.Names() {
		orig := in.Relation(name)
		got := back.Relation(name)
		if got == nil {
			t.Fatalf("relation %s lost", name)
		}
		if !orig.EqualSet(got) {
			t.Errorf("relation %s changed in round-trip:\n%v\nvs\n%v", name, orig, got)
		}
	}
	// The loaded schema supports validation.
	if err := back.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/no/such/dir"); err == nil {
		t.Error("missing dir should fail")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("dir without csv should fail")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "x.csv"), []byte("a,b\n1\n2,3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(bad); err == nil {
		t.Error("ragged csv should fail")
	}
}

func TestWriteRelationNulls(t *testing.T) {
	var b strings.Builder
	in := paperdb.Instance()
	if err := WriteRelation(&b, in.Relation("Children")); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.HasPrefix(s, "ID,name,age,mid,fid,docid") {
		t.Errorf("header wrong:\n%s", s)
	}
	// Bo's null fid becomes an empty cell.
	if !strings.Contains(s, "004,Bo,5,104,,d1") {
		t.Errorf("null cell wrong:\n%s", s)
	}
}

func TestQuotedAndUnicodeCells(t *testing.T) {
	src := "name,motto\n\"O'Brien, Pat\",\"say \"\"hi\"\"\"\nМария,日本語\n"
	rel, _, err := ReadRelation("People", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if got := rel.At(0).Get("People.name").Str(); got != "O'Brien, Pat" {
		t.Errorf("quoted cell = %q", got)
	}
	if got := rel.At(0).Get("People.motto").Str(); got != `say "hi"` {
		t.Errorf("escaped quotes = %q", got)
	}
	if got := rel.At(1).Get("People.name").Str(); got != "Мария" {
		t.Errorf("unicode = %q", got)
	}
	// Round trip through writer.
	var b strings.Builder
	if err := WriteRelation(&b, rel); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadRelation("People", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.EqualSet(back) {
		t.Errorf("quoted round-trip changed data:\n%s", b.String())
	}
}

// FuzzReadRelation checks the loader never panics and that accepted
// relations round-trip through the writer.
func FuzzReadRelation(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("ID,name\n001,Ann\n,\n")
	f.Add("x\n\"quo\"\"ted\"\n")
	f.Add("")
	f.Add("a,a\n1,1\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 10000 {
			return
		}
		rel, _, err := ReadRelation("F", strings.NewReader(src))
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteRelation(&b, rel); err != nil {
			t.Fatalf("accepted input failed to write: %v", err)
		}
		back, _, err := ReadRelation("F", strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("writer output does not re-parse: %v\n%q", err, b.String())
		}
		if rel.Len() != back.Len() {
			t.Fatalf("round-trip changed row count: %d vs %d", rel.Len(), back.Len())
		}
	})
}
