package csvio

// Streaming CSV ingest. Stream parses a CSV incrementally and yields
// tuples in bounded batches, satisfying the algebra.Iterator shape
// (Scheme/Name/Next/Close) structurally — csvio stays below algebra in
// the import graph, and a CSV source can participate in an iterator
// pipeline without the whole file being materialized first.
// ReadRelation is a thin drain over a Stream, so the two paths cannot
// diverge on parsing or kind-inference semantics.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"clio/internal/fault"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// streamBatch bounds the tuples returned per Next call (matches the
// algebra layer's batch size).
const streamBatch = 64

// Stream reads one CSV relation incrementally. The scheme is available
// as soon as the header parses; column kinds are inferred from the
// first non-null value seen per column as batches drain, so
// SchemaRelation is exact only once Next has returned a nil batch.
type Stream struct {
	name  string
	s     *relation.Scheme
	cr    *csv.Reader
	attrs []schema.Attribute
	rows  int64
	done  bool
	buf   []relation.Tuple
}

// OpenStream parses the header of r and returns the tuple stream. The
// header row supplies unqualified attribute names; the scheme qualifies
// them with the relation name.
func OpenStream(name string, r io.Reader) (*Stream, error) {
	if err := fault.Inject("csvio.read"); err != nil {
		return nil, fmt.Errorf("csvio: reading %s: %w", name, err)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header of %s: %w", name, err)
	}
	attrs := make([]schema.Attribute, len(header))
	qualified := make([]string, len(header))
	seen := map[string]bool{}
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			return nil, fmt.Errorf("csvio: empty column name in %s", name)
		}
		if seen[h] {
			return nil, fmt.Errorf("csvio: duplicate column %q in %s", h, name)
		}
		seen[h] = true
		attrs[i] = schema.Attribute{Name: h}
		qualified[i] = name + "." + h
	}
	return &Stream{
		name:  name,
		s:     relation.NewScheme(qualified...),
		cr:    cr,
		attrs: attrs,
	}, nil
}

// Scheme returns the qualified scheme parsed from the header.
func (st *Stream) Scheme() *relation.Scheme { return st.s }

// Name returns the relation name.
func (st *Stream) Name() string { return st.name }

// Rows returns the tuples yielded so far.
func (st *Stream) Rows() int64 { return st.rows }

// Next returns the next batch of at most streamBatch tuples, or
// (nil, nil) at end of stream. The batch is valid until the following
// Next call.
func (st *Stream) Next() ([]relation.Tuple, error) {
	if st.done {
		return nil, nil
	}
	if err := fault.Inject("csvio.stream"); err != nil {
		return nil, fmt.Errorf("csvio: streaming %s: %w", st.name, err)
	}
	st.buf = st.buf[:0]
	for len(st.buf) < streamBatch {
		rec, err := st.cr.Read()
		if err == io.EOF {
			st.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: reading %s: %w", st.name, err)
		}
		vals := make([]value.Value, st.s.Arity())
		for i := range vals {
			if i < len(rec) {
				vals[i] = value.Parse(strings.TrimSpace(rec[i]))
			}
		}
		t := relation.NewTuple(st.s, vals...)
		for i := range st.attrs {
			if st.attrs[i].Type == value.KindNull {
				if v := t.At(i); !v.IsNull() {
					st.attrs[i].Type = v.Kind()
				}
			}
		}
		st.buf = append(st.buf, t)
		st.rows++
	}
	if len(st.buf) == 0 {
		return nil, nil
	}
	return st.buf, nil
}

// Close releases the stream. The underlying reader is the caller's to
// close.
func (st *Stream) Close() { st.done = true }

// SchemaRelation returns the relation's schema entry with the column
// kinds inferred so far (the first non-null value per column; exact
// once the stream has drained).
func (st *Stream) SchemaRelation() *schema.Relation {
	return schema.NewRelation(st.name, st.attrs...)
}
