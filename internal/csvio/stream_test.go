package csvio

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"clio/internal/fault"
	"clio/internal/value"
)

// OpenStream must deliver every row, in order, in batches no larger
// than streamBatch, so a budgeted consumer can meter the ingest
// instead of materializing the file up front.
func TestStreamBatchesLargeFile(t *testing.T) {
	const rows = 3*streamBatch + 7
	var b strings.Builder
	b.WriteString("k,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,row%d\n", i, i)
	}
	st, err := OpenStream("T", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, batches := 0, 0
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		if len(batch) > streamBatch {
			t.Fatalf("batch of %d tuples, cap is %d", len(batch), streamBatch)
		}
		for _, u := range batch {
			if u.Get("T.k").IntVal() != int64(got) {
				t.Fatalf("row %d out of order: %v", got, u)
			}
			got++
		}
		batches++
	}
	if got != rows {
		t.Fatalf("streamed %d rows, want %d", got, rows)
	}
	if want := (rows + streamBatch - 1) / streamBatch; batches != want {
		t.Fatalf("delivered %d batches, want %d", batches, want)
	}
	if st.Rows() != int64(rows) {
		t.Fatalf("Rows() = %d, want %d", st.Rows(), rows)
	}
}

// ReadRelation is now a drain over OpenStream: the materialized result
// and inferred schema must be identical to what the streaming consumer
// sees, including kind inference from the first non-null cell and
// all-null columns staying untyped.
func TestStreamReadRelationParity(t *testing.T) {
	src := "a,b,c\n-,x,-\n3,y,-\n4.5,z,-\n"
	rel, sr, err := ReadRelation("R", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d, want 3", rel.Len())
	}
	// Column a: first non-null is "3" — int wins even though a float
	// follows; column c never sees a value.
	attrs := sr.Attrs
	if attrs[0].Type != value.KindInt {
		t.Fatalf("a inferred as %v, want int", attrs[0].Type)
	}
	if attrs[1].Type != value.KindString {
		t.Fatalf("b inferred as %v, want string", attrs[1].Type)
	}
	if attrs[2].Type != value.KindNull {
		t.Fatalf("all-null c inferred as %v, want untyped", attrs[2].Type)
	}

	st, err := OpenStream("R", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	i := 0
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		for _, u := range batch {
			if u.Key() != rel.Tuples()[i].Key() {
				t.Fatalf("row %d: stream %v, ReadRelation %v", i, u, rel.Tuples()[i])
			}
			i++
		}
	}
	if sr2 := st.SchemaRelation(); sr2.Attrs[0].Type != attrs[0].Type || sr2.Attrs[2].Type != attrs[2].Type {
		t.Fatalf("stream schema %v differs from ReadRelation schema %v", sr2.Attrs, attrs)
	}
}

// A fault injected mid-stream — after some batches have been delivered
// — must surface as a typed error from Next, and a fresh stream (point
// exhausted) must deliver the whole file.
func TestChaosStreamFaultMidIngest(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("csvio.stream", fault.Spec{Mode: fault.ModeError, After: 2, Times: 1})

	const rows = 5 * streamBatch
	var b strings.Builder
	b.WriteString("k\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	src := b.String()
	st, err := OpenStream("T", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	var ferr error
	for {
		batch, err := st.Next()
		if err != nil {
			ferr = err
			break
		}
		if batch == nil {
			break
		}
		delivered += len(batch)
	}
	st.Close()
	if !errors.Is(ferr, fault.ErrInjected) {
		t.Fatalf("mid-stream fault surfaced as %v, want fault.ErrInjected", ferr)
	}
	if delivered != 2*streamBatch {
		t.Fatalf("delivered %d rows before the fault, want %d (After: 2 batches)", delivered, 2*streamBatch)
	}
	rel, _, err := ReadRelation("T", strings.NewReader(src))
	if err != nil || rel.Len() != rows {
		t.Fatalf("clean re-read after exhausted fault: len=%v err=%v", rel.Len(), err)
	}
}
