package csvio

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"clio/internal/fault"
	"clio/internal/value"
)

// OpenStream must deliver every row, in order, in batches no larger
// than streamBatch, so a budgeted consumer can meter the ingest
// instead of materializing the file up front.
func TestStreamBatchesLargeFile(t *testing.T) {
	const rows = 3*streamBatch + 7
	var b strings.Builder
	b.WriteString("k,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,row%d\n", i, i)
	}
	st, err := OpenStream("T", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, batches := 0, 0
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		if len(batch) > streamBatch {
			t.Fatalf("batch of %d tuples, cap is %d", len(batch), streamBatch)
		}
		for _, u := range batch {
			if u.Get("T.k").IntVal() != int64(got) {
				t.Fatalf("row %d out of order: %v", got, u)
			}
			got++
		}
		batches++
	}
	if got != rows {
		t.Fatalf("streamed %d rows, want %d", got, rows)
	}
	if want := (rows + streamBatch - 1) / streamBatch; batches != want {
		t.Fatalf("delivered %d batches, want %d", batches, want)
	}
	if st.Rows() != int64(rows) {
		t.Fatalf("Rows() = %d, want %d", st.Rows(), rows)
	}
}

// ReadRelation is now a drain over OpenStream: the materialized result
// and inferred schema must be identical to what the streaming consumer
// sees, including kind inference from the first non-null cell and
// all-null columns staying untyped.
func TestStreamReadRelationParity(t *testing.T) {
	src := "a,b,c\n-,x,-\n3,y,-\n4.5,z,-\n"
	rel, sr, err := ReadRelation("R", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d, want 3", rel.Len())
	}
	// Column a: first non-null is "3" — int wins even though a float
	// follows; column c never sees a value.
	attrs := sr.Attrs
	if attrs[0].Type != value.KindInt {
		t.Fatalf("a inferred as %v, want int", attrs[0].Type)
	}
	if attrs[1].Type != value.KindString {
		t.Fatalf("b inferred as %v, want string", attrs[1].Type)
	}
	if attrs[2].Type != value.KindNull {
		t.Fatalf("all-null c inferred as %v, want untyped", attrs[2].Type)
	}

	st, err := OpenStream("R", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	i := 0
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		for _, u := range batch {
			if u.Key() != rel.Tuples()[i].Key() {
				t.Fatalf("row %d: stream %v, ReadRelation %v", i, u, rel.Tuples()[i])
			}
			i++
		}
	}
	if sr2 := st.SchemaRelation(); sr2.Attrs[0].Type != attrs[0].Type || sr2.Attrs[2].Type != attrs[2].Type {
		t.Fatalf("stream schema %v differs from ReadRelation schema %v", sr2.Attrs, attrs)
	}
}

// A fault injected mid-stream — after some batches have been delivered
// — must surface as a typed error from Next, and a fresh stream (point
// exhausted) must deliver the whole file.
func TestChaosStreamFaultMidIngest(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	fault.Set("csvio.stream", fault.Spec{Mode: fault.ModeError, After: 2, Times: 1})

	const rows = 5 * streamBatch
	var b strings.Builder
	b.WriteString("k\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	src := b.String()
	st, err := OpenStream("T", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	var ferr error
	for {
		batch, err := st.Next()
		if err != nil {
			ferr = err
			break
		}
		if batch == nil {
			break
		}
		delivered += len(batch)
	}
	st.Close()
	if !errors.Is(ferr, fault.ErrInjected) {
		t.Fatalf("mid-stream fault surfaced as %v, want fault.ErrInjected", ferr)
	}
	if delivered != 2*streamBatch {
		t.Fatalf("delivered %d rows before the fault, want %d (After: 2 batches)", delivered, 2*streamBatch)
	}
	rel, _, err := ReadRelation("T", strings.NewReader(src))
	if err != nil || rel.Len() != rows {
		t.Fatalf("clean re-read after exhausted fault: len=%v err=%v", rel.Len(), err)
	}
}

// A column that is all-null through the entire first batch must stay
// untyped in the mid-stream schema and pick up its kind only when a
// later batch delivers the first non-null cell — inference is
// incremental, not first-batch-only.
func TestStreamAllNullColumnTypedByLaterBatch(t *testing.T) {
	var b strings.Builder
	b.WriteString("k,late\n")
	// First batch (streamBatch rows): `late` is entirely null.
	for i := 0; i < streamBatch; i++ {
		fmt.Fprintf(&b, "%d,-\n", i)
	}
	// Second batch: first non-null `late` value is a float.
	for i := streamBatch; i < streamBatch+10; i++ {
		fmt.Fprintf(&b, "%d,%d.5\n", i, i)
	}
	st, err := OpenStream("T", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	batch, err := st.Next()
	if err != nil || len(batch) != streamBatch {
		t.Fatalf("first batch: len=%d err=%v", len(batch), err)
	}
	if k := st.SchemaRelation().Attrs[1].Type; k != value.KindNull {
		t.Fatalf("after all-null batch, late inferred as %v, want untyped", k)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if k := st.SchemaRelation().Attrs[1].Type; k != value.KindFloat {
		t.Fatalf("after typed batch, late inferred as %v, want float", k)
	}
	// Drain; the final schema must keep the later-batch kind.
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
	}
	if k := st.SchemaRelation().Attrs[1].Type; k != value.KindFloat {
		t.Fatalf("final schema lost the inferred kind: %v", k)
	}
}

// When a column's values change kind across batch boundaries, the
// first non-null kind wins — deterministically, regardless of where
// the batch boundary falls — and the streamed schema must agree with
// the materialized ReadRelation schema on the same bytes.
func TestStreamKindConflictAcrossBatches(t *testing.T) {
	var b strings.Builder
	b.WriteString("k,mixed\n")
	// Batch 1: ints. Batch 2: floats, then strings.
	for i := 0; i < streamBatch; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i)
	}
	for i := streamBatch; i < streamBatch+5; i++ {
		fmt.Fprintf(&b, "%d,%d.25\n", i, i)
	}
	for i := streamBatch + 5; i < streamBatch+10; i++ {
		fmt.Fprintf(&b, "%d,w%d\n", i, i)
	}
	src := b.String()

	st, err := OpenStream("T", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var streamed int
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		streamed += len(batch)
	}
	if k := st.SchemaRelation().Attrs[1].Type; k != value.KindInt {
		t.Fatalf("mixed column inferred as %v, want int (first non-null kind)", k)
	}

	rel, sr, err := ReadRelation("T", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != streamed {
		t.Fatalf("materialized %d rows, streamed %d", rel.Len(), streamed)
	}
	if sr.Attrs[1].Type != value.KindInt {
		t.Fatalf("ReadRelation inferred %v, want int — stream and drain diverged", sr.Attrs[1].Type)
	}
	// The cells themselves keep their parsed kinds: inference labels
	// the column, it does not coerce values.
	last := rel.Tuples()[rel.Len()-1].Get("T.mixed")
	if last.Kind() != value.KindString {
		t.Fatalf("last mixed cell parsed as %v, want string", last.Kind())
	}
}
