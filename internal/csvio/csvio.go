// Package csvio loads and saves relation instances as CSV files: one
// file per relation, first row the attribute names. Types are inferred
// per value with value.Parse ("-" and the empty string are null), so a
// directory of CSVs is all a user needs to start mapping.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"clio/internal/fault"
	"clio/internal/relation"
	"clio/internal/schema"
)

// ReadRelation parses one CSV stream into a relation with the given
// name. The header row supplies unqualified attribute names; the
// relation's scheme qualifies them with the relation name. It is a
// materializing drain over OpenStream — pipeline consumers that don't
// need the whole relation resident should use the Stream directly.
func ReadRelation(name string, r io.Reader) (*relation.Relation, *schema.Relation, error) {
	st, err := OpenStream(name, r)
	if err != nil {
		return nil, nil, err
	}
	defer st.Close()
	rel := relation.New(name, st.Scheme())
	for {
		batch, err := st.Next()
		if err != nil {
			return nil, nil, err
		}
		if batch == nil {
			break
		}
		for _, t := range batch {
			rel.Add(t)
		}
	}
	return rel, st.SchemaRelation(), nil
}

// LoadDir reads every *.csv file in dir into an instance. The relation
// name is the file base name without extension. Files load in sorted
// order for determinism.
func LoadDir(dir string) (*relation.Instance, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("csvio: no .csv files in %s", dir)
	}
	sch := schema.NewDatabase()
	in := relation.NewInstance(sch)
	for _, f := range files {
		name := strings.TrimSuffix(f, ".csv")
		fh, err := os.Open(filepath.Join(dir, f))
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		rel, srel, err := ReadRelation(name, fh)
		fh.Close()
		if err != nil {
			return nil, err
		}
		if err := sch.AddRelation(srel); err != nil {
			return nil, err
		}
		if err := in.Add(rel); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// WriteRelation writes a relation as CSV with unqualified headers.
func WriteRelation(w io.Writer, r *relation.Relation) error {
	if err := fault.Inject("csvio.write"); err != nil {
		return fmt.Errorf("csvio: writing %s: %w", r.Name, err)
	}
	cw := csv.NewWriter(w)
	header := make([]string, r.Scheme().Arity())
	for i, n := range r.Scheme().Names() {
		if ref, err := schema.ParseColumnRef(n); err == nil {
			header[i] = ref.Attr
		} else {
			header[i] = n
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range r.Tuples() {
		rec := make([]string, len(header))
		for i := range header {
			v := t.At(i)
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveDir writes every relation of the instance into dir as
// <name>.csv.
func SaveDir(dir string, in *relation.Instance) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	for _, name := range in.Names() {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
		err = WriteRelation(f, in.Relation(name))
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
