package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explain narrates the mapping in plain English — the textual
// counterpart of the understanding the paper builds through examples:
// which relations are combined and how, what lands in each target
// attribute, and which rows are kept or trimmed. Meant for display
// next to illustrations.
func (m *Mapping) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mapping %q populates %s.\n", m.Name, m.Target.Name)

	// Data linking.
	nodes := m.Graph.Nodes()
	switch len(nodes) {
	case 0:
		b.WriteString("No source relations are linked yet.\n")
	case 1:
		fmt.Fprintf(&b, "Rows come from %s alone.\n", describeNode(m, nodes[0]))
	default:
		fmt.Fprintf(&b, "Rows combine %d source relations:\n", len(nodes))
		for _, e := range m.Graph.Edges() {
			fmt.Fprintf(&b, "  - %s pairs with %s when %s\n",
				describeNode(m, e.A), describeNode(m, e.B), e.Label())
		}
		b.WriteString("Tuples that find no partner are kept and padded with nulls\n")
		b.WriteString("(outer-join semantics over all maximal combinations).\n")
	}

	// Correspondences.
	if len(m.Corrs) > 0 {
		b.WriteString("Target values:\n")
		for _, a := range m.Target.Attrs {
			c, ok := m.CorrFor(a.Name)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  - %s.%s := %s\n", m.Target.Name, a.Name, c.Expr)
		}
	}
	unmapped := unmappedAttrs(m)
	if len(unmapped) > 0 {
		fmt.Fprintf(&b, "Still unmapped (always null): %s.\n", strings.Join(unmapped, ", "))
	}

	// Trimming.
	for _, f := range m.SourceFilters {
		fmt.Fprintf(&b, "Source rows are kept only when %s.\n", f)
	}
	for _, f := range m.TargetFilters {
		fmt.Fprintf(&b, "Target rows are kept only when %s.\n", f)
	}
	if len(m.SourceFilters)+len(m.TargetFilters) == 0 {
		b.WriteString("No trimming filters: every data association reaches the target.\n")
	}
	return b.String()
}

func describeNode(m *Mapping, name string) string {
	n, _ := m.Graph.Node(name)
	if n.Base != n.Name {
		return fmt.Sprintf("%s (a second copy of %s)", n.Name, n.Base)
	}
	return n.Name
}

func unmappedAttrs(m *Mapping) []string {
	var out []string
	for _, a := range m.Target.Attrs {
		if _, ok := m.CorrFor(a.Name); !ok {
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ExplainDiff narrates how mapping b differs from mapping a — the
// companion to DistinguishingExamples for scenario selection.
func ExplainDiff(a, b *Mapping) string {
	d := Diff(a, b)
	if d.Empty() {
		return "The two mappings are structurally identical.\n"
	}
	var lines []string
	for _, e := range d.EdgesOnlyA {
		lines = append(lines, fmt.Sprintf("only the first links %s", e))
	}
	for _, e := range d.EdgesOnlyB {
		lines = append(lines, fmt.Sprintf("only the second links %s", e))
	}
	for _, n := range d.NodesOnlyA {
		lines = append(lines, fmt.Sprintf("only the first reads %s", n))
	}
	for _, n := range d.NodesOnlyB {
		lines = append(lines, fmt.Sprintf("only the second reads %s", n))
	}
	for _, c := range d.CorrsOnlyA {
		lines = append(lines, fmt.Sprintf("only the first computes %s", c))
	}
	for _, c := range d.CorrsOnlyB {
		lines = append(lines, fmt.Sprintf("only the second computes %s", c))
	}
	for _, f := range d.SourceOnlyA {
		lines = append(lines, fmt.Sprintf("only the first keeps rows where %s", f))
	}
	for _, f := range d.SourceOnlyB {
		lines = append(lines, fmt.Sprintf("only the second keeps rows where %s", f))
	}
	for _, f := range d.TargetOnlyA {
		lines = append(lines, fmt.Sprintf("only the first requires %s", f))
	}
	for _, f := range d.TargetOnlyB {
		lines = append(lines, fmt.Sprintf("only the second requires %s", f))
	}
	return "The mappings differ: " + strings.Join(lines, "; ") + ".\n"
}
