package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/relation"
)

// Illustration-machinery instrumentation.
var (
	cExamplesBuilt  = obs.GetCounter("core.examples.built")
	cExamplesChosen = obs.GetCounter("core.examples.chosen")
	hSufficientNS   = obs.GetHistogram("core.sufficient.ns")
)

// Example is a mapping example (Definition 4.1): a data association
// d ∈ D(G) together with the target tuple t = Q_φ(M)(d) computed by
// the filter-free mapping. It is positive when d passes every source
// filter and t passes every target filter, negative otherwise.
type Example struct {
	// Assoc is the data association d.
	Assoc relation.Tuple
	// Target is the transformed tuple t.
	Target relation.Tuple
	// Positive classifies the example against the filters.
	Positive bool
	// Coverage is the sorted set of graph nodes d covers.
	Coverage []string
	// Inherited marks examples carried over from a previous
	// illustration by continuous evolution (Section 5.3); fresh
	// examples have it false.
	Inherited bool
}

// CoverageKey returns the canonical category key of the example.
func (e Example) CoverageKey() string { return fd.CoverageKey(e.Coverage) }

// Illustration is a set of examples of one mapping (Section 4.1).
type Illustration struct {
	Mapping  *Mapping
	Examples []Example
}

// AllExamples builds the complete illustration: one example per data
// association of the mapping's query graph.
func AllExamples(ctx context.Context, m *Mapping, in *relation.Instance) (Illustration, error) {
	ctx, span := obs.StartSpan(ctx, "core.all_examples")
	defer span.End()
	dg, err := m.DG(ctx, in)
	if err != nil {
		return Illustration{}, err
	}
	return ExamplesOn(ctx, m, in, dg)
}

// ExamplesOn builds the complete illustration over a precomputed D(G).
// Coverage is resolved in one pass over the relation.
func ExamplesOn(ctx context.Context, m *Mapping, in *relation.Instance, dg *relation.Relation) (Illustration, error) {
	_, span := obs.StartSpan(ctx, "core.examples_on")
	defer span.End()
	span.SetInt("associations", int64(dg.Len()))
	cExamplesBuilt.Add(int64(dg.Len()))
	covs, err := fd.CoverageAll(dg, m.Graph, in)
	if err != nil {
		return Illustration{}, err
	}
	il := Illustration{Mapping: m, Examples: make([]Example, 0, dg.Len())}
	for i, d := range dg.Tuples() {
		t := m.Transform(d)
		pos := m.SatisfiesSourceFilters(d) && m.SatisfiesTargetFilters(t)
		il.Examples = append(il.Examples, Example{Assoc: d, Target: t, Positive: pos, Coverage: covs[i]})
	}
	return il, nil
}

// Requirement identifiers (see requirementsOf): what a sufficient
// illustration must demonstrate, per Definitions 4.2, 4.4, and 4.5.
const (
	reqGraph       = "G"  // some example with this coverage
	reqFilterPos   = "F+" // a positive example with this coverage
	reqFilterNeg   = "F-" // a negative example with this coverage
	reqCorrNonNull = "V+" // positive example, target attr non-null
	reqCorrNull    = "V0" // positive example, target attr null
)

// requirementsOf derives, from the complete example set, the
// requirement keys a sufficient illustration must cover, and for each
// example the set of keys it covers. A requirement exists only if some
// example satisfies it ("if there exists ... then I contains ...").
func requirementsOf(m *Mapping, all []Example) (reqs map[string]bool, covers [][]string) {
	reqs = map[string]bool{}
	covers = make([][]string, len(all))
	ts := m.TargetScheme()
	for i, e := range all {
		ck := e.CoverageKey()
		ks := []string{reqGraph + "|" + ck}
		if e.Positive {
			ks = append(ks, reqFilterPos+"|"+ck)
			for _, attr := range ts.Names() {
				if e.Target.Get(attr).IsNull() {
					ks = append(ks, reqCorrNull+"|"+ck+"|"+attr)
				} else {
					ks = append(ks, reqCorrNonNull+"|"+ck+"|"+attr)
				}
			}
		} else {
			ks = append(ks, reqFilterNeg+"|"+ck)
		}
		covers[i] = ks
		for _, k := range ks {
			reqs[k] = true
		}
	}
	return reqs, covers
}

// SufficientIllustration selects a small illustration that is
// sufficient for the mapping (Definition 4.6): it covers every
// category of D(G), every filter outcome per category, and every
// correspondence null/non-null behaviour per category. Selection is a
// greedy set cover (each example covers several requirements), which
// keeps the illustration close to minimal.
func SufficientIllustration(ctx context.Context, m *Mapping, in *relation.Instance) (Illustration, error) {
	ctx, span := obs.StartSpan(ctx, "core.sufficient_illustration")
	defer span.End()
	start := time.Now()
	defer hSufficientNS.ObserveSince(start)
	full, err := AllExamples(ctx, m, in)
	if err != nil {
		return Illustration{}, err
	}
	il := SelectSufficient(ctx, m, full)
	span.SetInt("examples", int64(len(il.Examples)))
	return il, nil
}

// SelectSufficient runs the greedy cover over a complete illustration.
func SelectSufficient(ctx context.Context, m *Mapping, full Illustration) Illustration {
	_, span := obs.StartSpan(ctx, "core.select_sufficient")
	defer span.End()
	reqs, covers := requirementsOf(m, full.Examples)
	span.SetInt("requirements", int64(len(reqs)))
	uncovered := len(reqs)
	covered := map[string]bool{}
	chosen := make([]bool, len(full.Examples))
	out := Illustration{Mapping: m}
	for uncovered > 0 {
		best, bestGain := -1, 0
		for i := range full.Examples {
			if chosen[i] {
				continue
			}
			gain := 0
			for _, k := range covers[i] {
				if !covered[k] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // unreachable: every requirement is witnessed by construction
		}
		chosen[best] = true
		out.Examples = append(out.Examples, full.Examples[best])
		for _, k := range covers[best] {
			if !covered[k] {
				covered[k] = true
				uncovered--
			}
		}
	}
	span.SetInt("chosen", int64(len(out.Examples)))
	cExamplesChosen.Add(int64(len(out.Examples)))
	return out
}

// MissingRequirements reports the requirement keys the illustration
// fails to cover; empty means the illustration is sufficient
// (Definition 4.6). The complete example set is recomputed to know
// which requirements exist.
func (il Illustration) MissingRequirements(in *relation.Instance) ([]string, error) {
	full, err := AllExamples(context.Background(), il.Mapping, in)
	if err != nil {
		return nil, err
	}
	reqs, _ := requirementsOf(il.Mapping, full.Examples)
	_, haveCovers := requirementsOf(il.Mapping, il.Examples)
	covered := map[string]bool{}
	for _, ks := range haveCovers {
		for _, k := range ks {
			covered[k] = true
		}
	}
	var missing []string
	for k := range reqs {
		if !covered[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// IsSufficient reports whether the illustration is sufficient for its
// mapping over the instance.
func (il Illustration) IsSufficient(in *relation.Instance) (bool, error) {
	missing, err := il.MissingRequirements(in)
	if err != nil {
		return false, err
	}
	return len(missing) == 0, nil
}

// Positives returns the positive examples.
func (il Illustration) Positives() []Example {
	var out []Example
	for _, e := range il.Examples {
		if e.Positive {
			out = append(out, e)
		}
	}
	return out
}

// Negatives returns the negative examples.
func (il Illustration) Negatives() []Example {
	var out []Example
	for _, e := range il.Examples {
		if !e.Positive {
			out = append(out, e)
		}
	}
	return out
}

// Categories returns the distinct coverage keys present, sorted.
func (il Illustration) Categories() []string {
	set := map[string]bool{}
	for _, e := range il.Examples {
		set[e.CoverageKey()] = true
	}
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Focus returns the illustration induced by a focus tuple set
// (Definition 4.7): every example whose data association projects onto
// the focus relation's scheme to one of the focus tuples. The focus
// relation is named by its graph node name; focusTuples are tuples
// over that node's qualified scheme.
func Focus(ctx context.Context, m *Mapping, in *relation.Instance, focusNode string, focusTuples []relation.Tuple) (Illustration, error) {
	if !m.Graph.HasNode(focusNode) {
		return Illustration{}, fmt.Errorf("core: focus relation %q not in query graph", focusNode)
	}
	ctx, span := obs.StartSpan(ctx, "core.focus")
	defer span.End()
	span.SetStr("node", focusNode)
	span.SetInt("focus_tuples", int64(len(focusTuples)))
	full, err := AllExamples(ctx, m, in)
	if err != nil {
		return Illustration{}, err
	}
	if len(focusTuples) == 0 {
		return Illustration{Mapping: m}, nil
	}
	fs := focusTuples[0].Scheme()
	keys := map[string]bool{}
	for _, ft := range focusTuples {
		keys[ft.Key()] = true
	}
	out := Illustration{Mapping: m}
	for _, e := range full.Examples {
		p := e.Assoc.Project(fs)
		if keys[p.Key()] {
			out.Examples = append(out.Examples, e)
		}
	}
	return out, nil
}

// IsFocussedOn verifies Definition 4.7: the illustration contains
// every example induced by a data association whose projection onto
// the focus scheme is one of the focus tuples.
func (il Illustration) IsFocussedOn(in *relation.Instance, focusNode string, focusTuples []relation.Tuple) (bool, error) {
	want, err := Focus(context.Background(), il.Mapping, in, focusNode, focusTuples)
	if err != nil {
		return false, err
	}
	have := map[string]bool{}
	for _, e := range il.Examples {
		have[e.Assoc.Key()] = true
	}
	for _, e := range want.Examples {
		if !have[e.Assoc.Key()] {
			return false, nil
		}
	}
	return true, nil
}

// Merge returns an illustration containing both sets of examples,
// deduplicated by data association (il's copies win, preserving
// Inherited marks).
func (il Illustration) Merge(other Illustration) Illustration {
	out := Illustration{Mapping: il.Mapping}
	seen := map[string]bool{}
	for _, e := range il.Examples {
		if !seen[e.Assoc.Key()] {
			seen[e.Assoc.Key()] = true
			out.Examples = append(out.Examples, e)
		}
	}
	for _, e := range other.Examples {
		if !seen[e.Assoc.Key()] {
			seen[e.Assoc.Key()] = true
			out.Examples = append(out.Examples, e)
		}
	}
	return out
}

// String renders the illustration compactly: one line per example with
// its coverage tag and polarity.
func (il Illustration) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "illustration of %s: %d examples\n", il.Mapping.Name, len(il.Examples))
	for _, e := range il.Examples {
		sign := "-"
		if e.Positive {
			sign = "+"
		}
		inh := ""
		if e.Inherited {
			inh = " (inherited)"
		}
		fmt.Fprintf(&b, "  [%s]%s%s %v => %v\n", strings.Join(e.Coverage, "+"), sign, inh, e.Assoc, e.Target)
	}
	return b.String()
}
