package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"clio/internal/algebra"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// jqInstance builds k relations R0..R(k-1), each with a key column and
// a payload, sharing a small key space so joins hit and miss.
func jqInstance(k, rows int, rng *rand.Rand) *relation.Instance {
	sch := schema.NewDatabase()
	for i := 0; i < k; i++ {
		sch.MustAddRelation(schema.NewRelation(fmt.Sprintf("R%d", i),
			schema.Attribute{Name: "k", Type: value.KindInt},
			schema.Attribute{Name: "v", Type: value.KindInt},
		))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < k; i++ {
		r := in.NewRelationFor(fmt.Sprintf("R%d", i))
		for j := 0; j < rows; j++ {
			r.AddValues(value.Int(int64(rng.Intn(4))), value.Int(int64(i*100+j)))
		}
		in.MustAdd(r)
	}
	return in
}

// randomJoinQuery builds a random join tree over R0..R(k-1): node i
// joins into the accumulated expression through a random prior
// relation, with a random join kind.
func randomJoinQuery(k int, rng *rand.Rand) JoinQuery {
	var q JoinQuery = NewRel("R0")
	kinds := []func(l, r JoinQuery, lrel, rrel string, pred expr.Expr) JQJoin{Inner, Left, Right, Full}
	for i := 1; i < k; i++ {
		prior := fmt.Sprintf("R%d", rng.Intn(i))
		next := fmt.Sprintf("R%d", i)
		pred := expr.Equals(prior+".k", next+".k")
		kind := kinds[rng.Intn(len(kinds))]
		q = kind(q, NewRel(next), prior, next, pred)
	}
	return q
}

// flattenRename renames a query result's qualified columns to the
// flattened target attribute names, qualified by the target name.
func flattenRename(r *relation.Relation, target string) *relation.Relation {
	rename := map[string]string{}
	for _, qn := range r.Scheme().Names() {
		rename[qn] = target + "." + flatten(qn)
	}
	return r.Rename(target, rename)
}

// TestRepresentationTheorem is the paper's Section 3.4 claim: every
// combination of joins and outer joins is representable as a set of
// mappings whose minimum union reproduces the query.
func TestRepresentationTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 120; trial++ {
		k := 2 + rng.Intn(3) // 2..4 relations
		in := jqInstance(k, 1+rng.Intn(4), rng)
		q := randomJoinQuery(k, rng)

		direct, err := EvaluateJoinQuery(q, in)
		if err != nil {
			t.Fatalf("trial %d: direct eval: %v", trial, err)
		}
		ms, err := RepresentJoinQuery(q, in, "T")
		if err != nil {
			t.Fatalf("trial %d: represent %s: %v", trial, q, err)
		}
		for _, m := range ms {
			if err := m.Validate(in); err != nil {
				t.Fatalf("trial %d: term mapping invalid: %v", trial, err)
			}
		}
		combined, err := CombineMappings(in, ms)
		if err != nil {
			t.Fatalf("trial %d: combine: %v", trial, err)
		}
		want := flattenRename(direct, "T").Distinct()
		if !combined.EqualSet(want) {
			t.Fatalf("trial %d: representation differs for %s\nquery: %v\nmappings: %v\n(terms %v)",
				trial, q, want.Sorted(), combined.Sorted(), q.terms())
		}
	}
}

func TestJoinQueryTerms(t *testing.T) {
	a, b, c := NewRel("A"), NewRel("B"), NewRel("C")
	pab := expr.Equals("A.k", "B.k")
	pbc := expr.Equals("B.k", "C.k")

	cases := []struct {
		q    JoinQuery
		want []string // term keys
	}{
		{Inner(a, b, "A", "B", pab), []string{"A,B"}},
		{Left(a, b, "A", "B", pab), []string{"A", "A,B"}},
		{Right(a, b, "A", "B", pab), []string{"B", "A,B"}},
		{Full(a, b, "A", "B", pab), []string{"A", "B", "A,B"}},
		// A LEFT (B JOIN C): the case where σ over D(G) alone fails —
		// terms are exactly {A}, {A,B,C}, never {A,B}.
		{Left(a, Inner(b, c, "B", "C", pbc), "A", "B", pab), []string{"A", "A,B,C"}},
		// (A FULL B) JOIN C on B–C: rows need B and C.
		{Inner(Full(a, b, "A", "B", pab), c, "B", "C", pbc), []string{"B,C", "A,B,C"}},
	}
	for _, tc := range cases {
		got := map[string]bool{}
		for _, term := range tc.q.terms() {
			got[strings.Join(term, ",")] = true
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: terms = %v, want %v", tc.q, got, tc.want)
			continue
		}
		for _, w := range tc.want {
			if !got[w] {
				t.Errorf("%s: missing term %s (got %v)", tc.q, w, got)
			}
		}
	}
}

func TestJoinQueryLeftInnerCounterexample(t *testing.T) {
	// The concrete instance showing why A LEFT (B JOIN C) is NOT a
	// selection over D(G): a joins b, b has no c. D(G) contains
	// (a,b,null) and not (a,null,null), but the query produces
	// (a,null,null). The term representation handles it.
	sch := schema.NewDatabase()
	for _, n := range []string{"A", "B", "C"} {
		sch.MustAddRelation(schema.NewRelation(n, schema.Attribute{Name: "k", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	ra := in.NewRelationFor("A")
	ra.AddRow("1")
	in.MustAdd(ra)
	rb := in.NewRelationFor("B")
	rb.AddRow("1")
	in.MustAdd(rb)
	rc := in.NewRelationFor("C") // empty: b never matches c
	in.MustAdd(rc)

	q := Left(NewRel("A"), Inner(NewRel("B"), NewRel("C"), "B", "C", expr.Equals("B.k", "C.k")),
		"A", "B", expr.Equals("A.k", "B.k"))
	direct, err := EvaluateJoinQuery(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() != 1 {
		t.Fatalf("direct = %v", direct)
	}
	if !direct.At(0).Get("B.k").IsNull() {
		t.Fatalf("query should pad B and C: %v", direct.At(0))
	}
	ms, err := RepresentJoinQuery(q, in, "T")
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CombineMappings(in, ms)
	if err != nil {
		t.Fatal(err)
	}
	if !combined.EqualSet(flattenRename(direct, "T")) {
		t.Fatalf("representation differs:\n%v\nvs\n%v", combined, direct)
	}
}

func TestQueryGraphOf(t *testing.T) {
	q := Left(NewRel("A"), Inner(NewRel("B"), NewRel("C"), "B", "C", expr.Equals("B.k", "C.k")),
		"A", "B", expr.Equals("A.k", "B.k"))
	g, err := QueryGraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 3 || !g.IsTree() {
		t.Errorf("graph = %v", g)
	}
	if _, ok := g.EdgeBetween("A", "B"); !ok {
		t.Error("A—B edge missing")
	}
}

func TestJoinQueryAliases(t *testing.T) {
	// Two copies of the same base relation: Parents and Parents2.
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("C",
		schema.Attribute{Name: "m", Type: value.KindInt},
		schema.Attribute{Name: "f", Type: value.KindInt}))
	sch.MustAddRelation(schema.NewRelation("P",
		schema.Attribute{Name: "id", Type: value.KindInt},
		schema.Attribute{Name: "aff", Type: value.KindString}))
	in := relation.NewInstance(sch)
	rc := in.NewRelationFor("C")
	rc.AddRow("1", "2")
	in.MustAdd(rc)
	rp := in.NewRelationFor("P")
	rp.AddRow("1", "x")
	rp.AddRow("2", "y")
	in.MustAdd(rp)

	q := Left(
		Left(NewRel("C"), Rel{Name: "P", Base: "P"}, "C", "P", expr.Equals("C.m", "P.id")),
		Rel{Name: "P2", Base: "P"}, "C", "P2", expr.Equals("C.f", "P2.id"))
	direct, err := EvaluateJoinQuery(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() != 1 {
		t.Fatalf("direct = %v", direct)
	}
	tp := direct.At(0)
	if tp.Get("P.aff").String() != "x" || tp.Get("P2.aff").String() != "y" {
		t.Errorf("copies wrong: %v", tp)
	}
	ms, err := RepresentJoinQuery(q, in, "T")
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CombineMappings(in, ms)
	if err != nil {
		t.Fatal(err)
	}
	if !combined.EqualSet(flattenRename(direct, "T")) {
		t.Error("alias representation differs")
	}
}

func TestCoveragePredicate(t *testing.T) {
	in := jqInstance(2, 2, rand.New(rand.NewSource(1)))
	q := Full(NewRel("R0"), NewRel("R1"), "R0", "R1", expr.Equals("R0.k", "R1.k"))
	g, err := QueryGraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := CoveragePredicate(g, in, "R0")
	if err != nil {
		t.Fatal(err)
	}
	s := relation.NewScheme("R0.k", "R0.v", "R1.k", "R1.v")
	covered := relation.NewTuple(s, value.Int(1), value.Int(2), value.Null, value.Null)
	uncovered := relation.NewTuple(s, value.Null, value.Null, value.Int(1), value.Int(2))
	if expr.Truth(p, covered) != value.True {
		t.Error("covered tuple should satisfy")
	}
	if expr.Truth(p, uncovered) != value.False {
		t.Error("uncovered tuple should fail")
	}
	if _, err := CoveragePredicate(g, in, "Nope"); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestCombineMappingsErrors(t *testing.T) {
	if _, err := CombineMappings(nil, nil); err == nil {
		t.Error("empty mapping set should fail")
	}
}

func TestJoinQueryPlanSQL(t *testing.T) {
	q := Left(NewRel("A"), NewRel("B"), "A", "B", expr.Equals("A.k", "B.k"))
	if !strings.Contains(q.String(), "LEFT JOIN") {
		t.Errorf("String = %q", q.String())
	}
	if !strings.Contains(q.plan().SQL(), "LEFT JOIN") {
		t.Errorf("plan SQL = %q", q.plan().SQL())
	}
	_ = algebra.InnerJoin
}
