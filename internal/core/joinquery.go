package core

import (
	"fmt"
	"sort"
	"strings"

	"clio/internal/algebra"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
)

// This file makes the paper's Section 3.4 claim executable: "this
// mapping representation can be used to represent arbitrary
// combinations of join and outer join queries". Following
// Galindo-Legaria's outerjoins-as-disjunctions result, a join /
// outer-join expression over a tree of strong binary predicates equals
// a minimum union of inner-join terms:
//
//	e1 JOIN  e2  =  { l ∪ r : l ∈ T(e1), r ∈ T(e2), pred endpoints ∈ l, r }
//	e1 LEFT  e2  =  join terms ∪ T(e1)
//	e1 RIGHT e2  =  join terms ∪ T(e2)
//	e1 FULL  e2  =  join terms ∪ T(e1) ∪ T(e2)
//
// and the query result is ⊕ over F(S) for each term S. Each term S is
// exactly one mapping: the query graph induced on S with the source
// filter "every relation of S is covered" — so the whole query is a
// set of mappings whose results combine by minimum union, which is how
// Clio populates a target from several mappings (Section 6.2).

// JoinQuery is a join / outer-join expression tree over source
// relations.
type JoinQuery interface {
	// relations appends the relation occurrences the expression reads.
	relations(dst []string) []string
	// terms computes the disjunction terms T(e): each a sorted set of
	// occurrence names.
	terms() [][]string
	// plan builds the direct algebra plan for differential testing.
	plan() algebra.Node
	// edges appends the join edges used by the expression.
	edges(dst []joinEdge) []joinEdge
	// String renders the expression.
	String() string
}

type joinEdge struct {
	a, b string
	pred expr.Expr
}

// Rel is a leaf: one relation occurrence.
type Rel struct {
	Name string // occurrence name (alias)
	Base string // stored relation; empty means Name
}

// NewRel builds a leaf over a stored relation (alias = name).
func NewRel(name string) Rel { return Rel{Name: name, Base: name} }

func (r Rel) base() string {
	if r.Base == "" {
		return r.Name
	}
	return r.Base
}

func (r Rel) relations(dst []string) []string { return append(dst, r.Name) }
func (r Rel) terms() [][]string               { return [][]string{{r.Name}} }
func (r Rel) plan() algebra.Node              { return algebra.NewScan(r.base(), r.Name) }
func (r Rel) edges(dst []joinEdge) []joinEdge { return dst }

// String returns the occurrence name.
func (r Rel) String() string { return r.Name }

// JQJoin is a binary join node. The predicate must be a strong
// predicate over one relation occurrence from each side (the paper's
// query-graph edge shape).
type JQJoin struct {
	Kind algebra.JoinKind
	L, R JoinQuery
	// LRel and RRel name the occurrences the predicate connects.
	LRel, RRel string
	Pred       expr.Expr
}

// Inner builds an inner join.
func Inner(l, r JoinQuery, lrel, rrel string, pred expr.Expr) JQJoin {
	return JQJoin{Kind: algebra.InnerJoin, L: l, R: r, LRel: lrel, RRel: rrel, Pred: pred}
}

// Left builds a left outer join.
func Left(l, r JoinQuery, lrel, rrel string, pred expr.Expr) JQJoin {
	return JQJoin{Kind: algebra.LeftJoin, L: l, R: r, LRel: lrel, RRel: rrel, Pred: pred}
}

// Right builds a right outer join.
func Right(l, r JoinQuery, lrel, rrel string, pred expr.Expr) JQJoin {
	return JQJoin{Kind: algebra.RightJoin, L: l, R: r, LRel: lrel, RRel: rrel, Pred: pred}
}

// Full builds a full outer join.
func Full(l, r JoinQuery, lrel, rrel string, pred expr.Expr) JQJoin {
	return JQJoin{Kind: algebra.FullJoin, L: l, R: r, LRel: lrel, RRel: rrel, Pred: pred}
}

func (j JQJoin) relations(dst []string) []string {
	return j.R.relations(j.L.relations(dst))
}

func (j JQJoin) terms() [][]string {
	lt, rt := j.L.terms(), j.R.terms()
	var joined [][]string
	for _, l := range lt {
		if !containsStr(l, j.LRel) {
			continue
		}
		for _, r := range rt {
			if !containsStr(r, j.RRel) {
				continue
			}
			joined = append(joined, sortedUnion(l, r))
		}
	}
	var out [][]string
	out = append(out, joined...)
	switch j.Kind {
	case algebra.LeftJoin:
		out = append(out, lt...)
	case algebra.RightJoin:
		out = append(out, rt...)
	case algebra.FullJoin:
		out = append(out, lt...)
		out = append(out, rt...)
	}
	return dedupTerms(out)
}

func (j JQJoin) plan() algebra.Node {
	return algebra.Join{Kind: j.Kind, L: j.L.plan(), R: j.R.plan(), On: j.Pred}
}

func (j JQJoin) edges(dst []joinEdge) []joinEdge {
	dst = j.L.edges(dst)
	dst = j.R.edges(dst)
	return append(dst, joinEdge{a: j.LRel, b: j.RRel, pred: j.Pred})
}

// String renders the join tree.
func (j JQJoin) String() string {
	return "(" + j.L.String() + " " + j.Kind.String() + " " + j.R.String() + " ON " + j.Pred.String() + ")"
}

// QueryGraphOf builds the query graph underlying a join query.
func QueryGraphOf(q JoinQuery) (*graph.QueryGraph, error) {
	g := graph.New()
	for _, occ := range q.relations(nil) {
		base := occ
		if err := addOccurrence(g, q, occ, base); err != nil {
			return nil, err
		}
	}
	for _, e := range q.edges(nil) {
		if err := g.AddEdge(e.a, e.b, e.pred); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func addOccurrence(g *graph.QueryGraph, q JoinQuery, occ, base string) error {
	// Resolve the leaf to find its base relation.
	var find func(JoinQuery) (Rel, bool)
	find = func(n JoinQuery) (Rel, bool) {
		switch v := n.(type) {
		case Rel:
			if v.Name == occ {
				return v, true
			}
		case JQJoin:
			if r, ok := find(v.L); ok {
				return r, ok
			}
			if r, ok := find(v.R); ok {
				return r, ok
			}
		}
		return Rel{}, false
	}
	leaf, ok := find(q)
	if !ok {
		return fmt.Errorf("core: occurrence %q not found in join query", occ)
	}
	return g.AddNode(leaf.Name, leaf.base())
}

// CoveragePredicate builds the source filter "node is covered": at
// least one of the node's attributes is non-null. Under the paper's
// no-all-null-tuples assumption this holds exactly when the data
// association involves a tuple of the node.
func CoveragePredicate(g *graph.QueryGraph, in *relation.Instance, node string) (expr.Expr, error) {
	n, ok := g.Node(node)
	if !ok {
		return nil, fmt.Errorf("core: no node %q", node)
	}
	r, err := in.Aliased(n.Base, n.Name)
	if err != nil {
		return nil, err
	}
	var disj expr.Expr
	for _, qn := range r.Scheme().Names() {
		atom := expr.IsNull{E: expr.Col{Name: qn}, Negate: true}
		if disj == nil {
			disj = atom
		} else {
			disj = expr.Bin{Op: expr.OpOr, L: disj, R: atom}
		}
	}
	return disj, nil
}

// RepresentJoinQuery compiles a join / outer-join query into the
// paper's mapping representation: one mapping per disjunction term,
// each with the term's induced (connected) query graph and a source
// filter demanding full coverage of the term. Correspondences are
// identities over every attribute of the query, so the mappings'
// minimum union reproduces the query's rows (CombineMappings).
func RepresentJoinQuery(q JoinQuery, in *relation.Instance, targetName string) ([]*Mapping, error) {
	g, err := QueryGraphOf(q)
	if err != nil {
		return nil, err
	}
	s, err := fd.Scheme(g, in)
	if err != nil {
		return nil, err
	}
	// The shared target: one attribute per source attribute.
	attrs := make([]schema.Attribute, s.Arity())
	for i, qn := range s.Names() {
		attrs[i] = schema.Attribute{Name: flatten(qn)}
	}
	target := schema.NewRelation(targetName, attrs...)

	var out []*Mapping
	for i, term := range q.terms() {
		sub := g.Induced(term)
		if !sub.Connected() {
			return nil, fmt.Errorf("core: term %v does not induce a connected subgraph", term)
		}
		m := NewMapping(fmt.Sprintf("%s_term%d", targetName, i), target)
		m.Graph = sub
		// Identities for the term's attributes; other target
		// attributes stay unmapped (null).
		termScheme, err := fd.Scheme(sub, in)
		if err != nil {
			return nil, err
		}
		for _, qn := range termScheme.Names() {
			m.Corrs = append(m.Corrs, Identity(qn, schema.Col(targetName, flatten(qn))))
		}
		// Full coverage of the term.
		for _, node := range term {
			p, err := CoveragePredicate(sub, in, node)
			if err != nil {
				return nil, err
			}
			m.SourceFilters = append(m.SourceFilters, p)
		}
		out = append(out, m)
	}
	return out, nil
}

// CombineMappings evaluates a set of mappings onto their shared target
// and combines the results by minimum union — how Clio materializes a
// target populated by several mappings.
func CombineMappings(in *relation.Instance, ms []*Mapping) (*relation.Relation, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("core: no mappings to combine")
	}
	rels := make([]*relation.Relation, len(ms))
	for i, m := range ms {
		r, err := m.Evaluate(in)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	out := relation.MinimumUnionAll(ms[0].Target.Name, rels...)
	return out, nil
}

// EvaluateJoinQuery runs the query directly through the algebra; the
// reference for the representation theorem tests.
func EvaluateJoinQuery(q JoinQuery, in *relation.Instance) (*relation.Relation, error) {
	return q.plan().Eval(in)
}

// flatten turns a qualified name into a target attribute name
// (Children.ID → Children_ID).
func flatten(qualified string) string {
	return strings.ReplaceAll(qualified, ".", "_")
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sortedUnion(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

func dedupTerms(ts [][]string) [][]string {
	seen := map[string]bool{}
	var out [][]string
	for _, t := range ts {
		s := append([]string(nil), t...)
		sort.Strings(s)
		k := strings.Join(s, ",")
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}
