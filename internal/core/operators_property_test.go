package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// randomKnowledgeCase builds a random instance plus knowledge base for
// walk property testing.
func randomKnowledgeCase(rng *rand.Rand, rels int) (*relation.Instance, *discovery.Knowledge) {
	sch := schema.NewDatabase()
	for i := 0; i < rels; i++ {
		sch.MustAddRelation(schema.NewRelation(fmt.Sprintf("R%d", i),
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindInt}))
	}
	in := relation.NewInstance(sch)
	for i := 0; i < rels; i++ {
		r := in.NewRelationFor(fmt.Sprintf("R%d", i))
		for j := 0; j < 3; j++ {
			r.AddValues(value.Int(int64(rng.Intn(3))), value.Int(int64(rng.Intn(3))))
		}
		in.MustAdd(r)
	}
	k := discovery.NewKnowledge()
	attrs := []string{"a", "b"}
	for i := 0; i < rels*2; i++ {
		x, y := rng.Intn(rels), rng.Intn(rels)
		if x == y {
			continue
		}
		k.AddUserEdge(
			schema.Col(fmt.Sprintf("R%d", x), attrs[rng.Intn(2)]),
			schema.Col(fmt.Sprintf("R%d", y), attrs[rng.Intn(2)]))
	}
	return in, k
}

// Property: every data-walk result is a *valid extension* per the
// paper's walks() conditions — the old graph is an induced subgraph of
// the new one with identical edge labels, the new graph is connected,
// validates against the instance, and the end node's base is the walk
// target.
func TestDataWalkValidityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		rels := 3 + rng.Intn(4)
		in, k := randomKnowledgeCase(rng, rels)
		m := NewMapping("m", schema.NewRelation("T", schema.Attribute{Name: "x"}))
		m.Graph.MustAddNode("R0", "R0")
		// Optionally pre-extend the mapping with one knowledge edge.
		if es := k.EdgesBetween("R0", "R1"); len(es) > 0 && rng.Intn(2) == 0 {
			m.Graph.MustAddNode("R1", "R1")
			e := es[0]
			from, to := e.From, e.To
			if from.Relation != "R0" {
				from, to = to, from
			}
			m.Graph.MustAddEdge("R0", "R1", expr.Equals("R0."+from.Attr, "R1."+to.Attr))
		}
		end := fmt.Sprintf("R%d", rels-1)
		opts, err := DataWalk(context.Background(), m, k, "R0", end, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range opts {
			ng := o.Mapping.Graph
			if !ng.Connected() {
				t.Fatalf("trial %d: extension disconnected:\n%v", trial, ng)
			}
			// Old nodes survive with identical bases; old edges keep
			// their labels.
			for _, n := range m.Graph.Nodes() {
				oldN, _ := m.Graph.Node(n)
				newN, ok := ng.Node(n)
				if !ok || newN.Base != oldN.Base {
					t.Fatalf("trial %d: node %s lost or rebased", trial, n)
				}
			}
			for _, e := range m.Graph.Edges() {
				ne, ok := ng.EdgeBetween(e.A, e.B)
				if !ok || ne.Label() != e.Label() {
					t.Fatalf("trial %d: edge %s—%s relabeled", trial, e.A, e.B)
				}
			}
			// End node has the right base.
			endNode, ok := ng.Node(o.EndNode)
			if !ok || endNode.Base != end {
				t.Fatalf("trial %d: end node %q base %q, want %q", trial, o.EndNode, endNode.Base, end)
			}
			if err := o.Mapping.Validate(in); err != nil {
				t.Fatalf("trial %d: invalid walk mapping: %v", trial, err)
			}
			// Evolution continuity from the old mapping holds.
			if m.Graph.NodeCount() > 0 {
				oldIll, err := SufficientIllustration(context.Background(), m, in)
				if err != nil {
					t.Fatal(err)
				}
				ev, err := Evolve(context.Background(), oldIll, o.Mapping, in)
				if err != nil {
					t.Fatal(err)
				}
				if ev.ContinuityRatio() != 1 {
					t.Fatalf("trial %d: continuity %v < 1", trial, ev.ContinuityRatio())
				}
			}
		}
	}
}

// Property: SufficientIllustration is sufficient, and stays sufficient
// when merged with focus examples, on random tree cases with random
// filters.
func TestSufficiencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 30; trial++ {
		in, _ := randomKnowledgeCase(rng, 3)
		target := schema.NewRelation("T",
			schema.Attribute{Name: "x"}, schema.Attribute{Name: "y"})
		m := NewMapping("m", target)
		m.Graph.MustAddNode("R0", "R0")
		m.Graph.MustAddNode("R1", "R1")
		m.Graph.MustAddEdge("R0", "R1", expr.Equals("R0.a", "R1.a"))
		m.Corrs = []Correspondence{
			Identity("R0.b", schema.Col("T", "x")),
			Identity("R1.b", schema.Col("T", "y")),
		}
		if rng.Intn(2) == 0 {
			m.SourceFilters = []expr.Expr{expr.MustParse(fmt.Sprintf("R0.b < %d", rng.Intn(3)))}
		}
		if rng.Intn(2) == 0 {
			m.TargetFilters = []expr.Expr{expr.MustParse("T.x IS NOT NULL")}
		}
		il, err := SufficientIllustration(context.Background(), m, in)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := il.IsSufficient(in)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			missing, _ := il.MissingRequirements(in)
			t.Fatalf("trial %d: illustration insufficient, missing %v\n%v", trial, missing, il)
		}
		// Greedy never selects redundant examples covering nothing new:
		// removing the last-selected example must break sufficiency or
		// the illustration had exactly one example.
		if len(il.Examples) > 1 {
			smaller := Illustration{Mapping: m, Examples: il.Examples[:len(il.Examples)-1]}
			if ok, _ := smaller.IsSufficient(in); ok {
				t.Fatalf("trial %d: last greedy pick was redundant", trial)
			}
		}
	}
}

// Property: the chase never proposes a referenced relation, and every
// chase mapping validates and contains exactly one extra node.
func TestDataChaseValidityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		in, _ := randomKnowledgeCase(rng, 4)
		ix := discovery.BuildValueIndex(context.Background(), in)
		m := NewMapping("m", schema.NewRelation("T", schema.Attribute{Name: "x"}))
		m.Graph.MustAddNode("R0", "R0")
		v := value.Int(int64(rng.Intn(3)))
		opts, err := DataChase(context.Background(), m, ix, "R0.a", v)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range opts {
			if o.To.Relation == "R0" {
				t.Fatalf("trial %d: chase proposed a referenced relation", trial)
			}
			if o.Mapping.Graph.NodeCount() != 2 {
				t.Fatalf("trial %d: chase should add exactly one node", trial)
			}
			if err := o.Mapping.Validate(in); err != nil {
				t.Fatalf("trial %d: chase mapping invalid: %v", trial, err)
			}
			// The chased value must genuinely occur in the proposed
			// column.
			found := false
			rel := in.Relation(o.To.Relation)
			pos := rel.Scheme().Index(o.To.String())
			for _, tp := range rel.Tuples() {
				if tp.At(pos).Equal(v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: chase hallucinated occurrence %v", trial, o)
			}
		}
	}
}
