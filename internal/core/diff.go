package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"clio/internal/expr"
	"clio/internal/obs"
	"clio/internal/relation"
)

// This file implements the paper's promise that examples "illustrate
// any differences from alternative mappings" (Section 1): a structural
// diff between two mappings, and distinguishing examples — data that
// one mapping sends to the target and the other does not.

// MappingDiff is the structural difference between two mappings.
type MappingDiff struct {
	// OnlyA / OnlyB hold human-readable elements present in exactly
	// one mapping, grouped by kind.
	NodesOnlyA, NodesOnlyB   []string
	EdgesOnlyA, EdgesOnlyB   []string
	CorrsOnlyA, CorrsOnlyB   []string
	SourceOnlyA, SourceOnlyB []string
	TargetOnlyA, TargetOnlyB []string
}

// Empty reports whether the mappings are structurally identical.
func (d MappingDiff) Empty() bool {
	return len(d.NodesOnlyA)+len(d.NodesOnlyB)+
		len(d.EdgesOnlyA)+len(d.EdgesOnlyB)+
		len(d.CorrsOnlyA)+len(d.CorrsOnlyB)+
		len(d.SourceOnlyA)+len(d.SourceOnlyB)+
		len(d.TargetOnlyA)+len(d.TargetOnlyB) == 0
}

// String renders the diff, one line per difference.
func (d MappingDiff) String() string {
	var b strings.Builder
	section := func(label string, onlyA, onlyB []string) {
		for _, s := range onlyA {
			fmt.Fprintf(&b, "  - %s (first only): %s\n", label, s)
		}
		for _, s := range onlyB {
			fmt.Fprintf(&b, "  + %s (second only): %s\n", label, s)
		}
	}
	section("node", d.NodesOnlyA, d.NodesOnlyB)
	section("edge", d.EdgesOnlyA, d.EdgesOnlyB)
	section("correspondence", d.CorrsOnlyA, d.CorrsOnlyB)
	section("source filter", d.SourceOnlyA, d.SourceOnlyB)
	section("target filter", d.TargetOnlyA, d.TargetOnlyB)
	if b.Len() == 0 {
		return "  (structurally identical)\n"
	}
	return b.String()
}

// Diff computes the structural difference between two mappings over
// the same target.
func Diff(a, b *Mapping) MappingDiff {
	var d MappingDiff
	d.NodesOnlyA, d.NodesOnlyB = symmetricDiff(nodeStrings(a), nodeStrings(b))
	d.EdgesOnlyA, d.EdgesOnlyB = symmetricDiff(edgeStrings(a), edgeStrings(b))
	d.CorrsOnlyA, d.CorrsOnlyB = symmetricDiff(corrStrings(a), corrStrings(b))
	d.SourceOnlyA, d.SourceOnlyB = symmetricDiff(exprStrings(a.SourceFilters), exprStrings(b.SourceFilters))
	d.TargetOnlyA, d.TargetOnlyB = symmetricDiff(exprStrings(a.TargetFilters), exprStrings(b.TargetFilters))
	return d
}

func nodeStrings(m *Mapping) []string {
	var out []string
	for _, n := range m.Graph.Nodes() {
		node, _ := m.Graph.Node(n)
		out = append(out, fmt.Sprintf("%s (copy of %s)", node.Name, node.Base))
	}
	return out
}

func edgeStrings(m *Mapping) []string {
	var out []string
	for _, e := range m.Graph.Edges() {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		out = append(out, fmt.Sprintf("%s—%s [%s]", a, b, e.Label()))
	}
	return out
}

func corrStrings(m *Mapping) []string {
	var out []string
	for _, c := range m.Corrs {
		out = append(out, c.String())
	}
	return out
}

func exprStrings(es []expr.Expr) []string {
	var out []string
	for _, e := range es {
		out = append(out, e.String())
	}
	return out
}

func symmetricDiff(a, b []string) (onlyA, onlyB []string) {
	as := map[string]bool{}
	for _, x := range a {
		as[x] = true
	}
	bs := map[string]bool{}
	for _, x := range b {
		bs[x] = true
	}
	for _, x := range a {
		if !bs[x] {
			onlyA = append(onlyA, x)
		}
	}
	for _, x := range b {
		if !as[x] {
			onlyB = append(onlyB, x)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

// Distinguishing holds examples that separate two mappings: data that
// reaches the target under exactly one of them.
type Distinguishing struct {
	// OnlyA are examples of mapping A whose target tuple is not
	// produced by B; OnlyB symmetrically.
	OnlyA, OnlyB []Example
}

// DistinguishingExamples finds up to limit examples per side that
// separate the two mappings (which must share a target relation).
// These are the examples Clio highlights when asking the user to
// choose between scenarios (Figures 3 and 4).
func DistinguishingExamples(ctx context.Context, a, b *Mapping, in *relation.Instance, limit int) (Distinguishing, error) {
	if a.Target.Name != b.Target.Name {
		return Distinguishing{}, fmt.Errorf("core: mappings target different relations (%s vs %s)",
			a.Target.Name, b.Target.Name)
	}
	ctx, span := obs.StartSpan(ctx, "core.distinguishing_examples")
	defer span.End()
	resA, err := a.Evaluate(in)
	if err != nil {
		return Distinguishing{}, err
	}
	resB, err := b.Evaluate(in)
	if err != nil {
		return Distinguishing{}, err
	}
	exA, err := AllExamples(ctx, a, in)
	if err != nil {
		return Distinguishing{}, err
	}
	exB, err := AllExamples(ctx, b, in)
	if err != nil {
		return Distinguishing{}, err
	}
	var out Distinguishing
	out.OnlyA = witnesses(exA, resB, limit)
	out.OnlyB = witnesses(exB, resA, limit)
	return out, nil
}

// witnesses returns positive examples of one mapping whose target
// tuple the other mapping's result does not contain.
func witnesses(il Illustration, other *relation.Relation, limit int) []Example {
	seen := map[string]bool{}
	for _, t := range other.Tuples() {
		seen[t.Key()] = true
	}
	var out []Example
	for _, e := range il.Examples {
		if !e.Positive {
			continue
		}
		if !seen[e.Target.Key()] {
			out = append(out, e)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// PerturbationScore measures how much mapping b perturbs mapping a:
// the number of structural elements (nodes, edges, correspondences,
// filters) present in exactly one of the two. The workspace ranking
// uses it to order alternatives by "least perturbation to the current
// active mapping" (Section 6.1).
func PerturbationScore(a, b *Mapping) int {
	d := Diff(a, b)
	return len(d.NodesOnlyA) + len(d.NodesOnlyB) +
		len(d.EdgesOnlyA) + len(d.EdgesOnlyB) +
		len(d.CorrsOnlyA) + len(d.CorrsOnlyB) +
		len(d.SourceOnlyA) + len(d.SourceOnlyB) +
		len(d.TargetOnlyA) + len(d.TargetOnlyB)
}
