package core

import (
	"context"
	"strings"
	"testing"

	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/schema"
	"clio/internal/value"
)

func TestDiffIdentical(t *testing.T) {
	m := fixtureMapping()
	d := Diff(m, m.Clone())
	if !d.Empty() {
		t.Errorf("clone diff should be empty: %v", d)
	}
	if !strings.Contains(d.String(), "identical") {
		t.Errorf("rendering = %q", d.String())
	}
}

func TestDiffStructural(t *testing.T) {
	a := fixtureMapping()
	b := a.WithoutCorrespondence("shipped")
	b.Graph = a.Graph.Induced([]string{"Orders", "Customers"})
	b = b.WithSourceFilter(expr.MustParse("Orders.total > 10"))
	d := Diff(a, b)
	if d.Empty() {
		t.Fatal("diff should not be empty")
	}
	if len(d.NodesOnlyA) != 1 || !strings.Contains(d.NodesOnlyA[0], "Shipments") {
		t.Errorf("NodesOnlyA = %v", d.NodesOnlyA)
	}
	if len(d.EdgesOnlyA) != 1 {
		t.Errorf("EdgesOnlyA = %v", d.EdgesOnlyA)
	}
	if len(d.CorrsOnlyA) != 1 || !strings.Contains(d.CorrsOnlyA[0], "shipped") {
		t.Errorf("CorrsOnlyA = %v", d.CorrsOnlyA)
	}
	if len(d.SourceOnlyB) != 1 {
		t.Errorf("SourceOnlyB = %v", d.SourceOnlyB)
	}
	s := d.String()
	for _, want := range []string{"first only", "second only", "Shipments"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestDistinguishingExamples(t *testing.T) {
	in := fixtureInstance()
	// Two mappings differing in a filter: one keeps only expensive
	// orders.
	a := fixtureMapping()
	b := a.WithSourceFilter(expr.MustParse("Orders.total > 100"))
	d, err := DistinguishingExamples(context.Background(), a, b, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Orders 1 (99) and 3 (15) reach the target only under a.
	if len(d.OnlyA) != 2 {
		t.Fatalf("OnlyA = %d examples, want 2: %v", len(d.OnlyA), d.OnlyA)
	}
	if len(d.OnlyB) != 0 {
		t.Errorf("OnlyB = %v, want none (b ⊆ a)", d.OnlyB)
	}
	for _, e := range d.OnlyA {
		if tot := e.Assoc.Get("Orders.total"); !tot.Equal(value.Int(99)) && !tot.Equal(value.Int(15)) {
			t.Errorf("unexpected witness: %v", e.Assoc)
		}
	}
	// Limit caps the witnesses.
	d1, err := DistinguishingExamples(context.Background(), a, b, in, 1)
	if err != nil || len(d1.OnlyA) != 1 {
		t.Errorf("limit not applied: %v, %v", d1.OnlyA, err)
	}
	// Different targets error.
	other := NewMapping("x", schema.NewRelation("Other", schema.Attribute{Name: "y"}))
	if _, err := DistinguishingExamples(context.Background(), a, other, in, 0); err == nil {
		t.Error("different targets should fail")
	}
}

func TestRemoveNode(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping().WithSourceFilter(expr.MustParse("Shipments.day IS NOT NULL"))
	out, err := RemoveNode(m, "Shipments")
	if err != nil {
		t.Fatal(err)
	}
	if out.Graph.HasNode("Shipments") {
		t.Error("node not removed")
	}
	if _, ok := out.CorrFor("shipped"); ok {
		t.Error("dependent correspondence not removed")
	}
	if len(out.SourceFilters) != 0 {
		t.Errorf("dependent filter not removed: %v", out.SourceFilters)
	}
	if err := out.Validate(in); err != nil {
		t.Fatal(err)
	}
	// The original is untouched.
	if !m.Graph.HasNode("Shipments") || len(m.SourceFilters) != 1 {
		t.Error("RemoveNode mutated input")
	}
	// Errors.
	if _, err := RemoveNode(m, "Nope"); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := RemoveNode(m, "Orders"); err == nil {
		t.Error("internal node should fail (degree 2)")
	}
	single := NewMapping("s", targetRel())
	single.Graph.MustAddNode("Orders", "Orders")
	if _, err := RemoveNode(single, "Orders"); err == nil {
		t.Error("last node should fail")
	}
}

func TestRelabelEdge(t *testing.T) {
	in := fixtureInstance()
	k := discovery.NewKnowledge()
	k.AddUserEdge(schema.Col("Orders", "cid"), schema.Col("Customers", "cid"))
	k.AddUserEdge(schema.Col("Orders", "oid"), schema.Col("Customers", "cid"))
	m := fixtureMapping()
	alts, err := RelabelEdge(m, k, "Orders", "Customers")
	if err != nil {
		t.Fatal(err)
	}
	// Current label is cid=cid; the oid=cid candidate is the only
	// alternative.
	if len(alts) != 1 {
		t.Fatalf("alternatives = %v", alts)
	}
	if !strings.Contains(alts[0].Label, "Orders.oid = Customers.cid") {
		t.Errorf("label = %q", alts[0].Label)
	}
	if err := alts[0].Mapping.Validate(in); err != nil {
		t.Fatal(err)
	}
	// The relabeled mapping produces different rows.
	r1, _ := m.Evaluate(in)
	r2, _ := alts[0].Mapping.Evaluate(in)
	if r1.EqualSet(r2) {
		t.Error("relabeled mapping should differ")
	}
	// Errors.
	if _, err := RelabelEdge(m, k, "Orders", "Shipments"); err != nil {
		t.Errorf("no candidates is fine (empty): %v", err)
	}
	if _, err := RelabelEdge(m, k, "Orders", "Nope"); err == nil {
		t.Error("unknown edge should fail")
	}
}

func TestRelabelEdgeWithCopies(t *testing.T) {
	// Relabeling works on aliased copies: the knowledge speaks in base
	// relations but the predicate is qualified with the copy name.
	k := discovery.NewKnowledge()
	k.AddUserEdge(schema.Col("Orders", "cid"), schema.Col("Customers", "cid"))
	k.AddUserEdge(schema.Col("Orders", "oid"), schema.Col("Customers", "cid"))
	m := NewMapping("m", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	m.Graph.MustAddNode("Customers2", "Customers")
	m.Graph.MustAddEdge("Orders", "Customers2", expr.Equals("Orders.cid", "Customers2.cid"))
	alts, err := RelabelEdge(m, k, "Orders", "Customers2")
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) != 1 || !strings.Contains(alts[0].Label, "Customers2.cid") {
		t.Fatalf("alts = %v", alts)
	}
}

func TestApplyTargetConstraints(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	m.TargetFilters = nil

	db := schema.NewDatabase()
	db.MustAddRelation(targetRel())
	db.AddNotNull("Report", "oid")
	db.AddNotNull("Report", "customer")
	db.AddNotNull("Other", "x") // foreign: ignored

	out := ApplyTargetConstraints(m, db)
	if len(out.TargetFilters) != 2 {
		t.Fatalf("filters = %v", out.TargetFilters)
	}
	if err := out.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Idempotent: re-applying adds nothing.
	again := ApplyTargetConstraints(out, db)
	if len(again.TargetFilters) != 2 {
		t.Errorf("re-apply duplicated filters: %v", again.TargetFilters)
	}
	// The derived filters drop uncovered associations: customers
	// without orders vanish.
	res, err := out.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Tuples() {
		if tp.Get("Report.customer").IsNull() || tp.Get("Report.oid").IsNull() {
			t.Errorf("constraint-violating row survived: %v", tp)
		}
	}
	// The input mapping is untouched.
	if len(m.TargetFilters) != 0 {
		t.Error("ApplyTargetConstraints mutated input")
	}
}

func TestPerturbationScore(t *testing.T) {
	m := fixtureMapping()
	if got := PerturbationScore(m, m.Clone()); got != 0 {
		t.Errorf("self score = %d", got)
	}
	bigger := m.WithSourceFilter(expr.MustParse("Orders.total > 1"))
	if got := PerturbationScore(m, bigger); got != 1 {
		t.Errorf("one filter = %d", got)
	}
	smaller, err := RemoveNode(m, "Shipments")
	if err != nil {
		t.Fatal(err)
	}
	// Node + edge + correspondence removed.
	if got := PerturbationScore(m, smaller); got != 3 {
		t.Errorf("leaf removal = %d, want 3", got)
	}
	// Symmetric.
	if PerturbationScore(m, smaller) != PerturbationScore(smaller, m) {
		t.Error("score should be symmetric")
	}
}
