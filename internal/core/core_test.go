package core

import (
	"context"
	"strings"
	"testing"

	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// fixture: a small Orders/Customers/Shipments source and a target.
func fixtureSchema() *schema.Database {
	d := schema.NewDatabase()
	d.MustAddRelation(schema.NewRelation("Orders",
		schema.Attribute{Name: "oid", Type: value.KindInt},
		schema.Attribute{Name: "cid", Type: value.KindInt},
		schema.Attribute{Name: "total", Type: value.KindInt},
	))
	d.MustAddRelation(schema.NewRelation("Customers",
		schema.Attribute{Name: "cid", Type: value.KindInt},
		schema.Attribute{Name: "name", Type: value.KindString},
	))
	d.MustAddRelation(schema.NewRelation("Shipments",
		schema.Attribute{Name: "oid", Type: value.KindInt},
		schema.Attribute{Name: "day", Type: value.KindString},
	))
	d.AddKey("Customers", "cid")
	d.AddForeignKey("o_c", "Orders", []string{"cid"}, "Customers", []string{"cid"})
	return d
}

func fixtureInstance() *relation.Instance {
	in := relation.NewInstance(fixtureSchema())
	o := in.NewRelationFor("Orders")
	o.AddRow("1", "10", "99")
	o.AddRow("2", "11", "250")
	o.AddRow("3", "10", "15")
	in.MustAdd(o)
	c := in.NewRelationFor("Customers")
	c.AddRow("10", "Ada")
	c.AddRow("11", "Grace")
	c.AddRow("12", "Alan") // no orders
	in.MustAdd(c)
	s := in.NewRelationFor("Shipments")
	s.AddRow("1", "Mon")
	s.AddRow("3", "Wed")
	in.MustAdd(s)
	return in
}

func targetRel() *schema.Relation {
	return schema.NewRelation("Report",
		schema.Attribute{Name: "oid", Type: value.KindInt},
		schema.Attribute{Name: "customer", Type: value.KindString},
		schema.Attribute{Name: "shipped", Type: value.KindString},
	)
}

func fixtureMapping() *Mapping {
	m := NewMapping("report", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	m.Graph.MustAddNode("Customers", "Customers")
	m.Graph.MustAddNode("Shipments", "Shipments")
	m.Graph.MustAddEdge("Orders", "Customers", expr.Equals("Orders.cid", "Customers.cid"))
	m.Graph.MustAddEdge("Orders", "Shipments", expr.Equals("Orders.oid", "Shipments.oid"))
	m.Corrs = []Correspondence{
		Identity("Orders.oid", schema.Col("Report", "oid")),
		Identity("Customers.name", schema.Col("Report", "customer")),
		Identity("Shipments.day", schema.Col("Report", "shipped")),
	}
	m.TargetFilters = []expr.Expr{expr.MustParse("Report.oid IS NOT NULL")}
	return m
}

func TestParseCorrespondence(t *testing.T) {
	c, err := ParseCorrespondence("Orders.total + 1 -> Report.oid")
	if err != nil {
		t.Fatal(err)
	}
	if c.Target != schema.Col("Report", "oid") {
		t.Errorf("target = %v", c.Target)
	}
	if len(c.SourceColumns()) != 1 || c.SourceColumns()[0] != "Orders.total" {
		t.Errorf("source columns = %v", c.SourceColumns())
	}
	if _, err := ParseCorrespondence("no arrow"); err == nil {
		t.Error("missing arrow should fail")
	}
	if _, err := ParseCorrespondence("(( -> Report.oid"); err == nil {
		t.Error("bad expr should fail")
	}
	if _, err := ParseCorrespondence("Orders.oid -> notacolumn"); err == nil {
		t.Error("bad target should fail")
	}
}

func TestCorrespondenceHelpers(t *testing.T) {
	c := FromExpr(expr.MustParse("Orders.total + Orders.total"), schema.Col("Report", "oid"))
	if got := c.SourceColumns(); len(got) != 1 {
		t.Errorf("dedup failed: %v", got)
	}
	if got := c.SourceRelations(); len(got) != 1 || got[0] != "Orders" {
		t.Errorf("relations = %v", got)
	}
	if !strings.Contains(c.String(), "-> Report.oid") {
		t.Errorf("String = %q", c.String())
	}
	s := relation.NewScheme("Orders.total")
	tp := relation.NewTuple(s, value.Int(5))
	if got := c.Apply(tp); !got.Equal(value.Int(10)) {
		t.Errorf("Apply = %v", got)
	}
}

func TestMappingValidate(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Mapping)
	}{
		{"empty graph", func(m *Mapping) { m.Graph = graph.New() }},
		{"disconnected", func(m *Mapping) { m.Graph.MustAddNode("Lone", "Customers") }},
		{"corr foreign target", func(m *Mapping) {
			m.Corrs = append(m.Corrs, Identity("Orders.oid", schema.Col("Other", "x")))
		}},
		{"corr unknown attr", func(m *Mapping) {
			m.Corrs = append(m.Corrs, Identity("Orders.oid", schema.Col("Report", "nope")))
		}},
		{"corr duplicate", func(m *Mapping) {
			m.Corrs = append(m.Corrs, Identity("Orders.total", schema.Col("Report", "oid")))
		}},
		{"corr outside graph", func(m *Mapping) {
			m.Corrs = append(m.Corrs[:1], Identity("Elsewhere.x", schema.Col("Report", "customer")))
		}},
		{"source filter unknown column", func(m *Mapping) {
			m.SourceFilters = append(m.SourceFilters, expr.MustParse("Zip.zap = 1"))
		}},
		{"target filter unknown column", func(m *Mapping) {
			m.TargetFilters = append(m.TargetFilters, expr.MustParse("Report.nope = 1"))
		}},
		{"weak edge", func(m *Mapping) {
			g := graph.New()
			g.MustAddNode("Orders", "Orders")
			g.MustAddNode("Customers", "Customers")
			g.MustAddEdge("Orders", "Customers", expr.MustParse("Orders.cid IS NULL"))
			m.Graph = g
		}},
		{"edge foreign node", func(m *Mapping) {
			g := graph.New()
			g.MustAddNode("Orders", "Orders")
			g.MustAddNode("Customers", "Customers")
			g.MustAddNode("Shipments", "Shipments")
			g.MustAddEdge("Orders", "Customers", expr.Equals("Orders.oid", "Shipments.oid"))
			g.MustAddEdge("Customers", "Shipments", expr.Equals("Customers.cid", "Shipments.oid"))
			m.Graph = g
		}},
	}
	for _, c := range cases {
		mm := fixtureMapping()
		c.mut(mm)
		if err := mm.Validate(in); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestEvaluate(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	res, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Orders 1, 2, 3 each produce one row (target filter keeps only
	// order-covering associations).
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3:\n%v", res.Len(), res)
	}
	rows := map[string]relation.Tuple{}
	for _, tp := range res.Tuples() {
		rows[tp.Get("Report.oid").String()] = tp
	}
	if rows["1"].Get("Report.customer").String() != "Ada" || rows["1"].Get("Report.shipped").String() != "Mon" {
		t.Errorf("order 1 row wrong: %v", rows["1"])
	}
	if !rows["2"].Get("Report.shipped").IsNull() {
		t.Errorf("order 2 should be unshipped: %v", rows["2"])
	}
}

func TestEvaluateWithSourceFilter(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping().WithSourceFilter(expr.MustParse("Orders.total > 50"))
	res, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%v", res.Len(), res)
	}
}

func TestTransformAndFilters(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	dg, err := m.DG(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dg.Tuples() {
		tp := m.Transform(d)
		if tp.Scheme().Arity() != 3 {
			t.Fatalf("target arity = %d", tp.Scheme().Arity())
		}
		// Unfiltered transform mirrors source values.
		if !tp.Get("Report.oid").Equal(d.Get("Orders.oid")) &&
			!(tp.Get("Report.oid").IsNull() && d.Get("Orders.oid").IsNull()) {
			t.Errorf("oid not carried: %v from %v", tp, d)
		}
	}
}

func TestMappedAttrsAndAccessors(t *testing.T) {
	m := fixtureMapping()
	if got := m.MappedAttrs(); len(got) != 3 || got[0] != "oid" {
		t.Errorf("MappedAttrs = %v", got)
	}
	if _, ok := m.CorrFor("customer"); !ok {
		t.Error("CorrFor(customer) missed")
	}
	if _, ok := m.CorrFor("nope"); ok {
		t.Error("CorrFor(nope) false positive")
	}
	if got := m.Relations(); len(got) != 3 || got[0] != "Customers" {
		t.Errorf("Relations = %v", got)
	}
	if !strings.Contains(m.String(), "mapping report -> Report") {
		t.Errorf("String = %q", m.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	m := fixtureMapping()
	c := m.Clone()
	c.Corrs = c.Corrs[:1]
	c.Graph.MustAddNode("Extra", "Customers")
	c.SourceFilters = append(c.SourceFilters, expr.MustParse("TRUE"))
	if len(m.Corrs) != 3 || m.Graph.NodeCount() != 3 || len(m.SourceFilters) != 0 {
		t.Error("Clone shares state with original")
	}
}

func TestTrimmingOperators(t *testing.T) {
	m := fixtureMapping()
	m2 := m.WithSourceFilter(expr.MustParse("Orders.total > 10"))
	if len(m2.SourceFilters) != 1 || len(m.SourceFilters) != 0 {
		t.Error("WithSourceFilter wrong")
	}
	m3 := m2.WithoutSourceFilter(0)
	if len(m3.SourceFilters) != 0 {
		t.Error("WithoutSourceFilter wrong")
	}
	if got := m2.WithoutSourceFilter(5); len(got.SourceFilters) != 1 {
		t.Error("out-of-range removal should be no-op")
	}
	m4 := m.WithTargetFilter(expr.MustParse("Report.shipped IS NOT NULL"))
	if len(m4.TargetFilters) != 2 {
		t.Error("WithTargetFilter wrong")
	}
	m5 := m4.WithoutTargetFilter(1)
	if len(m5.TargetFilters) != 1 {
		t.Error("WithoutTargetFilter wrong")
	}
}

func TestCorrespondenceOperators(t *testing.T) {
	m := fixtureMapping()
	if _, err := m.WithCorrespondence(Identity("Orders.total", schema.Col("Report", "oid"))); err == nil {
		t.Error("duplicate target attr should fail")
	}
	if _, err := m.WithCorrespondence(Identity("Mystery.x", schema.Col("Report", "shipped"))); err == nil {
		t.Error("off-graph source should fail")
	}
	m2 := m.WithoutCorrespondence("shipped")
	if len(m2.Corrs) != 2 {
		t.Error("WithoutCorrespondence wrong")
	}
	if _, err := m2.WithCorrespondence(Identity("Shipments.day", schema.Col("Report", "shipped"))); err != nil {
		t.Errorf("re-adding should work: %v", err)
	}
}

func TestDataWalkErrorsAndRanking(t *testing.T) {
	in := fixtureInstance()
	k := discovery.BuildKnowledge(context.Background(), in, true, 1)
	m := NewMapping("w", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	if _, err := DataWalk(context.Background(), m, k, "Nope", "Customers", 3); err == nil {
		t.Error("unknown start should fail")
	}
	opts, err := DataWalk(context.Background(), m, k, "Orders", "Customers", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) == 0 {
		t.Fatal("expected at least one walk option")
	}
	for i := 1; i < len(opts); i++ {
		if len(opts[i-1].Path) > len(opts[i].Path) {
			t.Error("options not ranked by path length")
		}
	}
	if opts[0].Describe() == "" {
		t.Error("Describe empty")
	}
}

func TestDataWalkCopyNumbering(t *testing.T) {
	// Walking to the same conflicted relation twice mints Parents2
	// then Parents3-style names.
	in := fixtureInstance()
	k := discovery.BuildKnowledge(context.Background(), in, true, 1)
	m := NewMapping("w", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	m.Graph.MustAddNode("Customers", "Customers")
	// An edge with a different label than the knowledge edge, to force
	// a conflict: Orders.oid = Customers.cid is not the FK.
	m.Graph.MustAddEdge("Orders", "Customers", expr.Equals("Orders.oid", "Customers.cid"))
	opts, err := DataWalk(context.Background(), m, k, "Orders", "Customers", 2)
	if err != nil {
		t.Fatal(err)
	}
	foundCopy := false
	for _, o := range opts {
		if o.Mapping.Graph.HasNode("Customers2") {
			foundCopy = true
			if o.Copies != 1 {
				t.Errorf("copies = %d", o.Copies)
			}
		}
	}
	if !foundCopy {
		t.Errorf("conflicting walk should introduce Customers2: %v", opts)
	}
}

func TestAddCorrespondenceTooManyMissing(t *testing.T) {
	in := fixtureInstance()
	k := discovery.BuildKnowledge(context.Background(), in, true, 1)
	m := NewMapping("w", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	c := FromExpr(expr.MustParse("concat(Customers.name, Shipments.day)"), schema.Col("Report", "customer"))
	if _, err := AddCorrespondence(context.Background(), m, k, c, 3); err == nil {
		t.Error("two missing relations should fail")
	}
}

func TestAddCorrespondenceEmptyGraph(t *testing.T) {
	in := fixtureInstance()
	k := discovery.BuildKnowledge(context.Background(), in, true, 1)
	m := NewMapping("w", targetRel())
	alts, err := AddCorrespondence(context.Background(), m, k, Identity("Orders.oid", schema.Col("Report", "oid")), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) != 1 || !alts[0].Graph.HasNode("Orders") {
		t.Fatalf("empty-graph seed wrong: %v", alts)
	}
	if err := alts[0].Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestAddCorrespondenceUnreachable(t *testing.T) {
	k := discovery.NewKnowledge() // empty: nothing reachable
	m := NewMapping("w", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	if _, err := AddCorrespondence(context.Background(), m, k, Identity("Customers.name", schema.Col("Report", "customer")), 3); err == nil {
		t.Error("unreachable relation should fail")
	}
}

func TestDataChaseErrors(t *testing.T) {
	in := fixtureInstance()
	ix := discovery.BuildValueIndex(context.Background(), in)
	m := NewMapping("w", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	if _, err := DataChase(context.Background(), m, ix, "notacolumn", value.Int(1)); err == nil {
		t.Error("malformed column should fail")
	}
	if _, err := DataChase(context.Background(), m, ix, "Customers.cid", value.Int(1)); err == nil {
		t.Error("off-graph column should fail")
	}
	if _, err := DataChase(context.Background(), m, ix, "Orders.oid", value.Null); err == nil {
		t.Error("null chase should fail")
	}
	// Chasing oid=1 finds Shipments.oid (Customers is found too via
	// nothing — cid values differ from oid 1? cid 10,11,12; so only
	// Shipments).
	opts, err := DataChase(context.Background(), m, ix, "Orders.oid", value.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 1 || opts[0].To.String() != "Shipments.oid" {
		t.Fatalf("chase options = %v", opts)
	}
	if opts[0].Describe() == "" {
		t.Error("Describe empty")
	}
}

func TestPlanMatchesEvaluate(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping().WithSourceFilter(expr.MustParse("Orders.total > 10"))
	dg, err := m.DG(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	plan := m.Plan(dg)
	got, err := plan.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	want := m.EvaluateOn(dg)
	if !got.EqualSet(want) {
		t.Errorf("plan vs direct mismatch:\n%v\nvs\n%v", got, want)
	}
	if !strings.Contains(plan.SQL(), "D(G)") {
		t.Errorf("plan SQL = %q", plan.SQL())
	}
}

func TestRequiredRootFromSourceFilter(t *testing.T) {
	m := fixtureMapping()
	m.TargetFilters = nil
	if _, ok := m.RequiredRoot(); ok {
		t.Error("no filters: no required root")
	}
	m2 := m.WithSourceFilter(expr.MustParse("Orders.oid IS NOT NULL"))
	root, ok := m2.RequiredRoot()
	if !ok || root != "Orders" {
		t.Errorf("root = %q, %v", root, ok)
	}
}

func TestViewSQLErrors(t *testing.T) {
	m := fixtureMapping()
	if _, err := m.ViewSQL("Nope"); err == nil {
		t.Error("unknown root should fail")
	}
	// Cyclic graph: not a tree.
	m.Graph.MustAddEdge("Customers", "Shipments", expr.Equals("Customers.cid", "Shipments.oid"))
	if _, err := m.ViewSQL("Orders"); err == nil {
		t.Error("non-tree should fail")
	}
}

func TestEvolveLostAttribute(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	il, err := SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking the graph is not an evolution.
	small := NewMapping("small", targetRel())
	small.Graph.MustAddNode("Orders", "Orders")
	small.Corrs = []Correspondence{Identity("Orders.oid", schema.Col("Report", "oid"))}
	if _, err := Evolve(context.Background(), il, small, in); err == nil {
		t.Error("graph shrink should fail evolution")
	}
}

func TestEvolveSameGraphFilterChange(t *testing.T) {
	// Trimming operators keep the graph; every example is inherited
	// and polarity is re-derived.
	in := fixtureInstance()
	m := fixtureMapping()
	il, err := SufficientIllustration(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.WithSourceFilter(expr.MustParse("Orders.total > 100"))
	ev, err := Evolve(context.Background(), il, m2, in)
	if err != nil {
		t.Fatal(err)
	}
	if ev.ContinuityRatio() != 1 {
		t.Errorf("continuity = %v", ev.ContinuityRatio())
	}
	// Only order 2 (total 250) stays positive among order rows.
	for _, e := range ev.Examples {
		if e.Positive && !e.Assoc.Get("Orders.total").Equal(value.Int(250)) {
			t.Errorf("unexpected positive: %v", e.Assoc)
		}
	}
}

func TestIllustrationAccessors(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	il, err := AllExamples(context.Background(), m, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(il.Positives())+len(il.Negatives()) != len(il.Examples) {
		t.Error("polarity partition wrong")
	}
	if len(il.Categories()) == 0 {
		t.Error("no categories")
	}
	if !strings.Contains(il.String(), "illustration of report") {
		t.Errorf("String = %q", il.String())
	}
	// Merge dedupes.
	merged := il.Merge(il)
	if len(merged.Examples) != len(il.Examples) {
		t.Error("self-merge should not grow")
	}
}

func TestFocusEmptyTuples(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	il, err := Focus(context.Background(), m, in, "Orders", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(il.Examples) != 0 {
		t.Error("empty focus should be empty")
	}
}

func TestDGSQL(t *testing.T) {
	m := fixtureMapping()
	s := m.DGSQL()
	if !strings.Contains(s, "FULL JOIN") || !strings.Contains(s, "minus subsumed") {
		t.Errorf("tree DGSQL = %q", s)
	}
	// Cyclic: falls back to the ⊕ form.
	m.Graph.MustAddEdge("Customers", "Shipments", expr.Equals("Customers.cid", "Shipments.oid"))
	s2 := m.DGSQL()
	if !strings.Contains(s2, "⊕") || !strings.Contains(s2, "F(Customers,Orders,Shipments)") {
		t.Errorf("cyclic DGSQL = %q", s2)
	}
}

func TestWalkEdgeOrientationReuse(t *testing.T) {
	// A walk arriving at an existing node over the same edge written
	// in the opposite orientation must reuse the node, not mint a
	// copy (regression: Customers.cid = Orders.cid vs reversed).
	in := fixtureInstance()
	k := discovery.BuildKnowledge(context.Background(), in, false, 1)
	m := NewMapping("w", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	m.Graph.MustAddNode("Customers", "Customers")
	// Edge written Customers-first.
	m.Graph.MustAddEdge("Orders", "Customers", expr.Equals("Customers.cid", "Orders.cid"))
	opts, err := DataWalk(context.Background(), m, k, "Customers", "Orders", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		if o.Mapping.Graph.HasNode("Orders2") {
			t.Errorf("reversed-orientation edge minted a copy: %v", o.Mapping.Graph)
		}
	}
}

func TestCanonicalLabel(t *testing.T) {
	a := canonicalLabel(expr.MustParse("A.x = B.y AND C.z = A.x"))
	b := canonicalLabel(expr.MustParse("A.x = C.z AND B.y = A.x"))
	if a != b {
		t.Errorf("canonical labels differ: %q vs %q", a, b)
	}
	// Non-equality conjuncts survive verbatim.
	c := canonicalLabel(expr.MustParse("A.x < B.y"))
	if !strings.Contains(c, "A.x < B.y") {
		t.Errorf("canonical label = %q", c)
	}
}

func TestSQLGeneration(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping().WithSourceFilter(expr.MustParse("Orders.total > 10"))
	canon := m.CanonicalSQL()
	for _, want := range []string{
		"SELECT * FROM (",
		"Orders.oid AS oid",
		"FROM D(G)",
		"WHERE Orders.total > 10",
		"WHERE oid IS NOT NULL",
	} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical SQL missing %q:\n%s", want, canon)
		}
	}
	root, ok := m.RequiredRoot()
	if !ok || root != "Orders" {
		t.Fatalf("root = %q, %v", root, ok)
	}
	view, err := m.ViewSQL(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE VIEW Report AS",
		"LEFT JOIN Customers ON Orders.cid = Customers.cid",
		"LEFT JOIN Shipments ON Orders.oid = Shipments.oid",
		"WHERE Orders.total > 10 AND Orders.oid IS NOT NULL",
	} {
		if !strings.Contains(view, want) {
			t.Errorf("view SQL missing %q:\n%s", want, view)
		}
	}
	// Equivalence of both evaluation paths.
	a, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EvaluateViaLeftJoins(root, in)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualSet(b) {
		t.Errorf("left-join evaluation differs:\n%v\nvs\n%v", a, b)
	}
	// Target filters over computed expressions rewrite through the
	// correspondence (substitution path).
	m2 := fixtureMapping()
	m2.Corrs[0] = FromExpr(expr.MustParse("Orders.oid + 100"), schema.Col("Report", "oid"))
	m2.TargetFilters = []expr.Expr{expr.MustParse("Report.oid > 101")}
	m2 = m2.WithSourceFilter(expr.MustParse("Orders.oid IS NOT NULL"))
	root2, _ := m2.RequiredRoot()
	view2, err := m2.ViewSQL(root2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view2, "(Orders.oid + 100) > 101") {
		t.Errorf("target filter not rewritten:\n%s", view2)
	}
}

func TestFocusOnFixture(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping()
	orders, err := in.Aliased("Orders", "Orders")
	if err != nil {
		t.Fatal(err)
	}
	// Focus on order 1 only.
	var focusTuples []relation.Tuple
	for _, tp := range orders.Tuples() {
		if tp.Get("Orders.oid").Equal(value.Int(1)) {
			focusTuples = append(focusTuples, tp)
		}
	}
	il, err := Focus(context.Background(), m, in, "Orders", focusTuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(il.Examples) != 1 {
		t.Fatalf("focussed examples = %d:\n%v", len(il.Examples), il)
	}
	ok, err := il.IsFocussedOn(in, "Orders", focusTuples)
	if err != nil || !ok {
		t.Errorf("IsFocussedOn = %v, %v", ok, err)
	}
	// An empty illustration is not focussed when matches exist.
	empty := Illustration{Mapping: m}
	if ok, _ := empty.IsFocussedOn(in, "Orders", focusTuples); ok {
		t.Error("empty illustration should not be focussed")
	}
}

func TestExplain(t *testing.T) {
	m := fixtureMapping().WithSourceFilter(expr.MustParse("Orders.total > 10"))
	s := m.Explain()
	for _, want := range []string{
		`Mapping "report" populates Report.`,
		"combine 3 source relations",
		"Orders pairs with Customers when Orders.cid = Customers.cid",
		"Report.oid := Orders.oid",
		"Source rows are kept only when Orders.total > 10",
		"Target rows are kept only when Report.oid IS NOT NULL",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation missing %q:\n%s", want, s)
		}
	}
	// Single-node, unfiltered mapping.
	single := NewMapping("s", targetRel())
	single.Graph.MustAddNode("Orders", "Orders")
	single.Corrs = []Correspondence{Identity("Orders.oid", schema.Col("Report", "oid"))}
	s2 := single.Explain()
	if !strings.Contains(s2, "Orders alone") || !strings.Contains(s2, "No trimming filters") {
		t.Errorf("single-node explanation wrong:\n%s", s2)
	}
	if !strings.Contains(s2, "Still unmapped (always null): customer, shipped.") {
		t.Errorf("unmapped attrs missing:\n%s", s2)
	}
	// Empty mapping.
	empty := NewMapping("e", targetRel())
	if !strings.Contains(empty.Explain(), "No source relations") {
		t.Error("empty explanation wrong")
	}
	// Copies are described as copies.
	withCopy := NewMapping("c", targetRel())
	withCopy.Graph.MustAddNode("Orders", "Orders")
	withCopy.Graph.MustAddNode("Customers2", "Customers")
	withCopy.Graph.MustAddEdge("Orders", "Customers2", expr.Equals("Orders.cid", "Customers2.cid"))
	if !strings.Contains(withCopy.Explain(), "Customers2 (a second copy of Customers)") {
		t.Errorf("copy description missing:\n%s", withCopy.Explain())
	}
}

func TestExplainDiff(t *testing.T) {
	a := fixtureMapping()
	if got := ExplainDiff(a, a.Clone()); !strings.Contains(got, "identical") {
		t.Errorf("identical diff = %q", got)
	}
	b := a.WithSourceFilter(expr.MustParse("Orders.total > 100")).WithoutCorrespondence("shipped")
	got := ExplainDiff(a, b)
	for _, want := range []string{
		"only the first computes Shipments.day -> Report.shipped",
		"only the second keeps rows where Orders.total > 100",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff narration missing %q:\n%s", want, got)
		}
	}
}
