package core

import (
	"strings"
	"testing"

	"clio/internal/expr"
	"clio/internal/schema"
)

func TestMappingJSONRoundTrip(t *testing.T) {
	in := fixtureInstance()
	m := fixtureMapping().
		WithSourceFilter(expr.MustParse("Orders.total > 10"))
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Human-readable: expressions appear in surface syntax.
	s := string(data)
	for _, want := range []string{
		`"Orders.cid = Customers.cid"`,
		`"Orders.oid -> Report.oid"`,
		`"Orders.total > 10"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
	back, err := UnmarshalMapping(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Semantics preserved: same evaluation result.
	r1, err := m.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.EqualSet(r2) {
		t.Errorf("round-trip changed semantics:\n%v\nvs\n%v", r1, r2)
	}
	// Structure preserved: empty diff.
	if d := Diff(m, back); !d.Empty() {
		t.Errorf("round-trip structural diff:\n%s", d)
	}
}

func TestMappingJSONWithCopies(t *testing.T) {
	m := NewMapping("copies", targetRel())
	m.Graph.MustAddNode("Orders", "Orders")
	m.Graph.MustAddNode("Customers2", "Customers")
	m.Graph.MustAddEdge("Orders", "Customers2", expr.Equals("Orders.cid", "Customers2.cid"))
	m.Corrs = []Correspondence{Identity("Customers2.name", sCol("Report", "customer"))}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMapping(data)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := back.Graph.Node("Customers2")
	if !ok || n.Base != "Customers" {
		t.Errorf("copy lost: %v, %v", n, ok)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		`{not json`,
		`{}`,
		`{"target":{"name":"T","attrs":["a"]},"edges":[{"a":"X","b":"Y","pred":"(("}]}`,
		`{"target":{"name":"T","attrs":["a"]},"nodes":[{"name":"X","base":"X"}],"edges":[{"a":"X","b":"Z","pred":"X.a = Z.a"}]}`,
		`{"target":{"name":"T","attrs":["a"]},"correspondences":["no arrow"]}`,
		`{"target":{"name":"T","attrs":["a"]},"sourceFilters":["(("]}`,
		`{"target":{"name":"T","attrs":["a"]},"targetFilters":["(("]}`,
	}
	for i, s := range bad {
		if _, err := UnmarshalMapping([]byte(s)); err == nil {
			t.Errorf("case %d should fail: %s", i, s)
		}
	}
}

func sCol(rel, attr string) schema.ColumnRef { return schema.Col(rel, attr) }
