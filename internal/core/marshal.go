package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/schema"
)

// Mapping persistence: mappings serialize to a stable JSON document in
// which all expressions appear in their surface syntax (re-parsed on
// load), so saved mappings are human-readable and diffable.

type mappingJSON struct {
	Name   string     `json:"name"`
	Target targetJSON `json:"target"`
	Nodes  []nodeJSON `json:"nodes"`
	Edges  []edgeJSON `json:"edges"`
	Corrs  []string   `json:"correspondences"`
	Source []string   `json:"sourceFilters,omitempty"`
	Filter []string   `json:"targetFilters,omitempty"`
}

type targetJSON struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

type nodeJSON struct {
	Name string `json:"name"`
	Base string `json:"base"`
}

type edgeJSON struct {
	A    string `json:"a"`
	B    string `json:"b"`
	Pred string `json:"pred"`
}

// MarshalJSON serializes the mapping.
func (m *Mapping) MarshalJSON() ([]byte, error) {
	doc := mappingJSON{Name: m.Name}
	doc.Target.Name = m.Target.Name
	for _, a := range m.Target.Attrs {
		doc.Target.Attrs = append(doc.Target.Attrs, a.Name)
	}
	for _, n := range m.Graph.Nodes() {
		node, _ := m.Graph.Node(n)
		doc.Nodes = append(doc.Nodes, nodeJSON{Name: node.Name, Base: node.Base})
	}
	for _, e := range m.Graph.Edges() {
		doc.Edges = append(doc.Edges, edgeJSON{A: e.A, B: e.B, Pred: e.Label()})
	}
	for _, c := range m.Corrs {
		doc.Corrs = append(doc.Corrs, c.String())
	}
	for _, f := range m.SourceFilters {
		doc.Source = append(doc.Source, f.String())
	}
	for _, f := range m.TargetFilters {
		doc.Filter = append(doc.Filter, f.String())
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// UnmarshalMapping reconstructs a mapping from its JSON document.
func UnmarshalMapping(data []byte) (*Mapping, error) {
	var doc mappingJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("core: parsing mapping JSON: %w", err)
	}
	if doc.Target.Name == "" {
		return nil, fmt.Errorf("core: mapping JSON missing target")
	}
	attrs := make([]schema.Attribute, len(doc.Target.Attrs))
	for i, a := range doc.Target.Attrs {
		attrs[i] = schema.Attribute{Name: a}
	}
	m := NewMapping(doc.Name, schema.NewRelation(doc.Target.Name, attrs...))
	g := graph.New()
	for _, n := range doc.Nodes {
		if err := g.AddNode(n.Name, n.Base); err != nil {
			return nil, err
		}
	}
	for _, e := range doc.Edges {
		pred, err := expr.Parse(e.Pred)
		if err != nil {
			return nil, fmt.Errorf("core: edge predicate %q: %w", e.Pred, err)
		}
		if err := g.AddEdge(e.A, e.B, pred); err != nil {
			return nil, err
		}
	}
	m.Graph = g
	for _, c := range doc.Corrs {
		corr, err := ParseCorrespondence(c)
		if err != nil {
			return nil, err
		}
		m.Corrs = append(m.Corrs, corr)
	}
	for _, f := range doc.Source {
		p, err := expr.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("core: source filter %q: %w", f, err)
		}
		m.SourceFilters = append(m.SourceFilters, p)
	}
	for _, f := range doc.Filter {
		p, err := expr.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("core: target filter %q: %w", f, err)
		}
		m.TargetFilters = append(m.TargetFilters, p)
	}
	return m, nil
}
