package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/obs"
	"clio/internal/schema"
	"clio/internal/value"
)

// Operator instrumentation: how many alternatives each walk/chase/
// add-correspondence invocation produced.
var (
	cWalkOptions  = obs.GetCounter("core.walk.options")
	cChaseOptions = obs.GetCounter("core.chase.options")
	cCorrAlts     = obs.GetCounter("core.add_corr.alternatives")
)

// This file implements the mapping operators of Section 5. Every
// operator is non-destructive: it returns new mappings, leaving the
// input untouched, so workspaces can hold alternatives side by side.

// --- Data trimming operators (Section 5, "data trimming operators") ---

// WithSourceFilter returns a copy of m with an added C_S predicate.
func (m *Mapping) WithSourceFilter(p expr.Expr) *Mapping {
	out := m.Clone()
	out.SourceFilters = append(out.SourceFilters, p)
	return out
}

// WithoutSourceFilter returns a copy of m with the i-th C_S predicate
// removed; out of range is a no-op copy.
func (m *Mapping) WithoutSourceFilter(i int) *Mapping {
	out := m.Clone()
	if i >= 0 && i < len(out.SourceFilters) {
		out.SourceFilters = append(out.SourceFilters[:i:i], out.SourceFilters[i+1:]...)
	}
	return out
}

// WithTargetFilter returns a copy of m with an added C_T predicate.
func (m *Mapping) WithTargetFilter(p expr.Expr) *Mapping {
	out := m.Clone()
	out.TargetFilters = append(out.TargetFilters, p)
	return out
}

// WithoutTargetFilter returns a copy of m with the i-th C_T predicate
// removed; out of range is a no-op copy.
func (m *Mapping) WithoutTargetFilter(i int) *Mapping {
	out := m.Clone()
	if i >= 0 && i < len(out.TargetFilters) {
		out.TargetFilters = append(out.TargetFilters[:i:i], out.TargetFilters[i+1:]...)
	}
	return out
}

// --- Correspondence operators ---

// WithCorrespondence returns a copy of m with the correspondence
// added. It fails if the target attribute is already mapped (the
// workspace layer turns that case into a new alternative mapping,
// Example 6.2) or if the correspondence reads relations outside the
// query graph (use AddCorrespondence to walk to them).
func (m *Mapping) WithCorrespondence(c Correspondence) (*Mapping, error) {
	if _, dup := m.CorrFor(c.Target.Attr); dup {
		return nil, fmt.Errorf("core: target attribute %s already mapped", c.Target)
	}
	for _, rel := range c.SourceRelations() {
		if !m.Graph.HasNode(rel) {
			return nil, fmt.Errorf("core: correspondence reads %q which is not in the query graph", rel)
		}
	}
	out := m.Clone()
	out.Corrs = append(out.Corrs, c)
	return out, nil
}

// WithoutCorrespondence returns a copy of m with the correspondence
// for the named target attribute removed.
func (m *Mapping) WithoutCorrespondence(attr string) *Mapping {
	out := m.Clone()
	keep := out.Corrs[:0]
	for _, c := range out.Corrs {
		if c.Target.Attr != attr {
			keep = append(keep, c)
		}
	}
	out.Corrs = keep
	return out
}

// --- Data walk (Section 5.1) ---

// WalkOption is one alternative produced by a data walk: a new mapping
// whose query graph is G ∪ G' for one inferred path G'.
type WalkOption struct {
	Mapping *Mapping
	// Path is the knowledge path the extension follows.
	Path discovery.Path
	// EndNode is the graph node name for the walk's end relation
	// (a fresh copy name when the base was already taken).
	EndNode string
	// Copies is how many relation copies the extension introduced.
	Copies int
}

// Describe renders the option for display.
func (w WalkOption) Describe() string {
	return fmt.Sprintf("via %s (end node %s, %d copies)", w.Path, w.EndNode, w.Copies)
}

// DataWalk implements the walk operator: it enumerates knowledge paths
// from the start node's base relation to the end base relation, turns
// each into a query-graph extension (introducing relation copies
// whenever a path edge would conflict with an existing edge label,
// per the paper's walks() conditions), and returns one new mapping per
// viable extension. Options are ranked by path length, then by copies
// introduced, then lexicographically.
func DataWalk(ctx context.Context, m *Mapping, k *discovery.Knowledge, startNode, endBase string, maxLen int) ([]WalkOption, error) {
	start, ok := m.Graph.Node(startNode)
	if !ok {
		return nil, fmt.Errorf("core: walk start %q is not in the query graph", startNode)
	}
	_, span := obs.StartSpan(ctx, "core.data_walk")
	defer span.End()
	span.SetStr("start", startNode)
	span.SetStr("end_base", endBase)
	paths := k.Paths(start.Base, endBase, maxLen)
	span.SetInt("paths", int64(len(paths)))
	var out []WalkOption
	seen := map[string]bool{}
	for _, p := range paths {
		opt, ok := applyPath(m, startNode, p)
		if !ok {
			continue
		}
		sig := graphSignature(opt.Mapping.Graph)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, opt)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		if out[i].Copies != out[j].Copies {
			return out[i].Copies < out[j].Copies
		}
		return out[i].Path.String() < out[j].Path.String()
	})
	span.SetInt("options", int64(len(out)))
	cWalkOptions.Add(int64(len(out)))
	return out, nil
}

// applyPath extends m's graph along one knowledge path, returning the
// new mapping. The walk starts at an existing node; each subsequent
// base relation is mapped to a node name: an existing node is reused
// only when the path edge coincides with the graph's edge (same
// endpoints, same label) — otherwise a fresh copy is introduced
// (paper Section 5.1, Figure 11's Parents2).
func applyPath(m *Mapping, startNode string, p discovery.Path) (WalkOption, bool) {
	g := m.Graph.Clone()
	cur := startNode
	curBase, _ := g.Node(startNode)
	base := curBase.Base
	copies := 0
	for _, e := range p {
		// Orient the edge: fromSide qualifies cur, toSide the next.
		fromCol, toCol := e.From, e.To
		if fromCol.Relation != base {
			fromCol, toCol = toCol, fromCol
		}
		if fromCol.Relation != base {
			return WalkOption{}, false // path does not continue from cur
		}
		nextBase := toCol.Relation
		nextName, isNew := chooseNodeName(g, cur, nextBase, fromCol, toCol)
		if isNew && nextName != nextBase {
			copies++
		}
		g.MustAddNode(nextName, nextBase)
		pred := expr.Equals(cur+"."+fromCol.Attr, nextName+"."+toCol.Attr)
		if _, exists := g.EdgeBetween(cur, nextName); !exists {
			g.MustAddEdge(cur, nextName, pred)
		}
		cur, base = nextName, nextBase
	}
	out := m.Clone()
	out.Graph = g
	return WalkOption{Mapping: out, Path: p, EndNode: cur, Copies: copies}, true
}

// chooseNodeName picks the graph node for the next base relation on a
// walk: reuse an existing same-base node when the walk edge coincides
// with an existing edge label from cur (or no edge exists between cur
// and it yet and the node was introduced by this very walk); otherwise
// mint a fresh copy name (Base2, Base3, ...). isNew reports whether
// the node does not yet exist.
func chooseNodeName(g *graph.QueryGraph, cur, nextBase string, fromCol, toCol schema.ColumnRef) (name string, isNew bool) {
	// An equality edge matches in either orientation.
	want1 := expr.Equals(cur+"."+fromCol.Attr, nextBase+"."+toCol.Attr).String()
	want2 := expr.Equals(nextBase+"."+toCol.Attr, cur+"."+fromCol.Attr).String()
	if n, ok := g.Node(nextBase); ok && n.Base == nextBase {
		if e, ok := g.EdgeBetween(cur, nextBase); ok && (e.Label() == want1 || e.Label() == want2) {
			return nextBase, false
		}
		// Existing node but the edge would be new or relabeled:
		// introduce a copy (the paper's validity condition).
		return freshCopyName(g, nextBase), true
	}
	if !g.HasNode(nextBase) {
		return nextBase, true
	}
	// Name taken by a node of a different base: mint a copy name.
	return freshCopyName(g, nextBase), true
}

// freshCopyName returns base2, base3, ... — the first unused copy name.
func freshCopyName(g *graph.QueryGraph, base string) string {
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s%d", base, i)
		if !g.HasNode(name) {
			return name
		}
	}
}

// graphSignature canonically encodes a graph for deduplication.
// Equality conjuncts are orientation-normalized so that
// "A.x = B.y" and "B.y = A.x" signatures coincide.
func graphSignature(g *graph.QueryGraph) string {
	nodes := g.Nodes()
	sort.Strings(nodes)
	var edges []string
	for _, e := range g.Edges() {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		edges = append(edges, a+"~"+b+"~"+canonicalLabel(e.Pred))
	}
	sort.Strings(edges)
	return strings.Join(nodes, ",") + "|" + strings.Join(edges, ";")
}

// canonicalLabel renders a predicate with each equality conjunct's
// operands in lexicographic order and the conjuncts sorted.
func canonicalLabel(p expr.Expr) string {
	var conjuncts []string
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		if b, ok := e.(expr.Bin); ok {
			switch b.Op {
			case expr.OpAnd:
				walk(b.L)
				walk(b.R)
				return
			case expr.OpEq:
				l, r := b.L.String(), b.R.String()
				if l > r {
					l, r = r, l
				}
				conjuncts = append(conjuncts, l+" = "+r)
				return
			}
		}
		conjuncts = append(conjuncts, e.String())
	}
	walk(p)
	sort.Strings(conjuncts)
	return strings.Join(conjuncts, " AND ")
}

// --- AddCorrespondence (Section 5, "correspondence operators") ---

// AddCorrespondence adds a value correspondence, inferring graph
// extensions when the correspondence reads relations outside the
// current query graph (the Section 2 scenario for v3: Clio shows the
// mid and fid alternatives). It returns one mapping per alternative;
// when the source relations are already present, exactly one mapping
// is returned. If an extension ends in a relation copy, the
// correspondence is rewritten to read the copy.
func AddCorrespondence(ctx context.Context, m *Mapping, k *discovery.Knowledge, c Correspondence, maxLen int) ([]*Mapping, error) {
	ctx, span := obs.StartSpan(ctx, "core.add_correspondence")
	defer span.End()
	span.SetStr("target", c.Target.String())
	var missing []string
	for _, rel := range c.SourceRelations() {
		if !m.Graph.HasNode(rel) {
			missing = append(missing, rel)
		}
	}
	span.SetInt("missing", int64(len(missing)))
	switch len(missing) {
	case 0:
		out, err := m.WithCorrespondence(c)
		if err != nil {
			return nil, err
		}
		span.SetInt("alternatives", 1)
		cCorrAlts.Inc()
		return []*Mapping{out}, nil
	case 1:
		// Walk from every existing node to the missing base; gather
		// distinct alternatives.
		if m.Graph.NodeCount() == 0 {
			// Empty graph: seed it with the missing relation alone.
			out := m.Clone()
			out.Graph.MustAddNode(missing[0], missing[0])
			return attachCorr(out, missing[0], missing[0], c)
		}
		var alts []*Mapping
		seen := map[string]bool{}
		for _, start := range m.Graph.Nodes() {
			opts, err := DataWalk(ctx, m, k, start, missing[0], maxLen)
			if err != nil {
				return nil, err
			}
			for _, o := range opts {
				withCorr, err := attachCorr(o.Mapping, missing[0], o.EndNode, c)
				if err != nil {
					return nil, err
				}
				for _, a := range withCorr {
					sig := graphSignature(a.Graph)
					if !seen[sig] {
						seen[sig] = true
						alts = append(alts, a)
					}
				}
			}
		}
		if len(alts) == 0 {
			return nil, fmt.Errorf("core: no walk found to relation %q (is it in the join knowledge?)", missing[0])
		}
		span.SetInt("alternatives", int64(len(alts)))
		cCorrAlts.Add(int64(len(alts)))
		return alts, nil
	default:
		return nil, fmt.Errorf("core: correspondence reads %d unmapped relations %v; add them one at a time", len(missing), missing)
	}
}

// attachCorr rewrites c to read endNode instead of missingBase (when a
// copy was introduced) and appends it to m.
func attachCorr(m *Mapping, missingBase, endNode string, c Correspondence) ([]*Mapping, error) {
	cc := c
	if endNode != missingBase {
		cc.Expr = expr.RenameQualifiers(c.Expr, map[string]string{missingBase: endNode})
	}
	out, err := m.WithCorrespondence(cc)
	if err != nil {
		return nil, err
	}
	return []*Mapping{out}, nil
}

// --- Data chase (Section 5.2) ---

// ChaseOption is one alternative produced by a data chase: the mapping
// extended with a single equijoin edge from the chased column to an
// occurrence of the chased value elsewhere in the source.
type ChaseOption struct {
	Mapping *Mapping
	// From is the chased column (node-qualified).
	From schema.ColumnRef
	// To is the discovered column (base-qualified; its node name in
	// the new graph equals its relation name).
	To schema.ColumnRef
	// Count is how many times the value occurs in To.
	Count int
}

// Describe renders the option for display.
func (c ChaseOption) Describe() string {
	return fmt.Sprintf("%s = %s (%d occurrence(s))", c.From, c.To, c.Count)
}

// DataChase implements the chase operator: given a value v of a
// column Q.A of some graph node Q, it finds every occurrence of v in
// relations not referenced by the mapping, and for each occurrence
// R.B returns the mapping extended with node R and edge Q.A = R.B.
func DataChase(ctx context.Context, m *Mapping, ix *discovery.ValueIndex, fromCol string, v value.Value) ([]ChaseOption, error) {
	ref, err := schema.ParseColumnRef(fromCol)
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "core.data_chase")
	defer span.End()
	span.SetStr("from", fromCol)
	if _, ok := m.Graph.Node(ref.Relation); !ok {
		return nil, fmt.Errorf("core: chase column %q is not on a query-graph node", fromCol)
	}
	if v.IsNull() {
		return nil, fmt.Errorf("core: cannot chase the null value")
	}
	referenced := map[string]bool{}
	for _, n := range m.Graph.Nodes() {
		gn, _ := m.Graph.Node(n)
		referenced[gn.Base] = true
	}
	var out []ChaseOption
	for _, occ := range ix.Occurrences(v) {
		if referenced[occ.Column.Relation] {
			continue
		}
		ext := m.Clone()
		ext.Graph.MustAddNode(occ.Column.Relation, occ.Column.Relation)
		ext.Graph.MustAddEdge(ref.Relation, occ.Column.Relation,
			expr.Equals(fromCol, occ.Column.String()))
		out = append(out, ChaseOption{
			Mapping: ext,
			From:    ref,
			To:      occ.Column,
			Count:   occ.Count,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].To.String() < out[j].To.String()
	})
	span.SetInt("options", int64(len(out)))
	cChaseOptions.Add(int64(len(out)))
	return out, nil
}
