package core

import (
	"fmt"
	"strings"

	"clio/internal/algebra"
	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
)

// This file renders mappings as SQL. Two forms are produced:
//
//   - CanonicalSQL: the Definition 3.14 query over the D(G) symbol —
//     the form the paper writes in Example 3.15.
//   - ViewSQL: the paper's Section 2 "create view Kids as select ...
//     from Children left join ..." form, available when the query
//     graph is a tree and a required root relation exists. Target
//     filters are rewritten over the defining expressions.
//
// Plan builds the executable algebra plan over a materialized D(G),
// and LeftJoinPlan the left-outer-join plan that ViewSQL prints; the
// equivalence of the two (under a required root) is property-tested
// and benchmarked (experiment E6).

// CanonicalSQL renders the mapping query in the paper's canonical
// form over D(G).
func (m *Mapping) CanonicalSQL() string {
	var b strings.Builder
	b.WriteString("SELECT * FROM (\n  SELECT ")
	b.WriteString(m.selectList())
	b.WriteString("\n  FROM D(G)")
	if len(m.SourceFilters) > 0 {
		b.WriteString("\n  WHERE ")
		b.WriteString(andSQL(m.SourceFilters))
	}
	b.WriteString("\n)")
	if len(m.TargetFilters) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(andSQLUnqualified(m.TargetFilters, m.Target.Name))
	}
	return b.String()
}

func (m *Mapping) selectList() string {
	var parts []string
	for _, a := range m.Target.Attrs {
		if c, ok := m.CorrFor(a.Name); ok {
			parts = append(parts, c.Expr.String()+" AS "+a.Name)
		}
	}
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, ", ")
}

func andSQL(ps []expr.Expr) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// andSQLUnqualified renders target filters with the target qualifier
// stripped (the subquery exposes bare attribute names).
func andSQLUnqualified(ps []expr.Expr, target string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strings.ReplaceAll(p.String(), target+".", "")
	}
	return strings.Join(parts, " AND ")
}

// RequiredRoot returns a graph node whose coverage the filters force:
// a node X such that some target filter demands non-nullness of a
// target attribute computed as a plain column of X, or some source
// filter demands non-nullness of one of X's columns. ok is false when
// no such node exists.
func (m *Mapping) RequiredRoot() (string, bool) {
	for _, f := range m.TargetFilters {
		isn, okCast := f.(expr.IsNull)
		if !okCast || !isn.Negate {
			continue
		}
		col, okCol := isn.E.(expr.Col)
		if !okCol {
			continue
		}
		ref, err := schema.ParseColumnRef(col.Name)
		if err != nil {
			continue
		}
		c, okCorr := m.CorrFor(ref.Attr)
		if !okCorr {
			continue
		}
		src, okSrc := c.Expr.(expr.Col)
		if !okSrc {
			continue
		}
		sref, err := schema.ParseColumnRef(src.Name)
		if err == nil && m.Graph.HasNode(sref.Relation) {
			return sref.Relation, true
		}
	}
	for _, f := range m.SourceFilters {
		isn, okCast := f.(expr.IsNull)
		if !okCast || !isn.Negate {
			continue
		}
		col, okCol := isn.E.(expr.Col)
		if !okCol {
			continue
		}
		ref, err := schema.ParseColumnRef(col.Name)
		if err == nil && m.Graph.HasNode(ref.Relation) {
			return ref.Relation, true
		}
	}
	return "", false
}

// ViewSQL renders the mapping as the paper's Section 2 view: a chain
// of LEFT JOINs from the root. It requires a tree query graph; the
// root should normally come from RequiredRoot, since the rendering is
// only equivalent to the mapping query when the root's coverage is
// forced. Target filters are rewritten by substituting each target
// attribute with its defining expression.
func (m *Mapping) ViewSQL(root string) (string, error) {
	plan, err := m.LeftJoinPlan(root)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE VIEW %s AS\nSELECT %s\nFROM %s", m.Target.Name, m.selectList(), plan.fromSQL)
	var where []string
	for _, f := range m.SourceFilters {
		where = append(where, f.String())
	}
	for _, f := range m.rewrittenTargetFilters() {
		where = append(where, f.String())
	}
	if len(where) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(where, " AND "))
	}
	b.WriteString(";")
	return b.String(), nil
}

// rewrittenTargetFilters substitutes each target attribute reference
// with its defining correspondence expression, yielding source-level
// predicates (unmapped target attributes become the NULL literal via
// an absent column, which is what the mapping semantics computes too).
func (m *Mapping) rewrittenTargetFilters() []expr.Expr {
	subst := map[string]expr.Expr{}
	for _, c := range m.Corrs {
		subst[c.Target.String()] = c.Expr
	}
	out := make([]expr.Expr, len(m.TargetFilters))
	for i, f := range m.TargetFilters {
		out[i] = substituteColumns(f, subst)
	}
	return out
}

// substituteColumns replaces column references with expressions.
func substituteColumns(e expr.Expr, subst map[string]expr.Expr) expr.Expr {
	switch n := e.(type) {
	case expr.Lit:
		return n
	case expr.Col:
		if r, ok := subst[n.Name]; ok {
			return r
		}
		return n
	case expr.Bin:
		return expr.Bin{Op: n.Op, L: substituteColumns(n.L, subst), R: substituteColumns(n.R, subst)}
	case expr.Not:
		return expr.Not{E: substituteColumns(n.E, subst)}
	case expr.IsNull:
		return expr.IsNull{E: substituteColumns(n.E, subst), Negate: n.Negate}
	case expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = substituteColumns(a, subst)
		}
		return expr.Call{Name: n.Name, Args: args}
	case expr.In:
		list := make([]expr.Expr, len(n.List))
		for i, a := range n.List {
			list[i] = substituteColumns(a, subst)
		}
		return expr.In{E: substituteColumns(n.E, subst), List: list, Negate: n.Negate}
	case expr.Between:
		return expr.Between{
			E: substituteColumns(n.E, subst), Lo: substituteColumns(n.Lo, subst),
			Hi: substituteColumns(n.Hi, subst), Negate: n.Negate,
		}
	case expr.Like:
		return expr.Like{E: substituteColumns(n.E, subst), Pattern: n.Pattern, Negate: n.Negate}
	default:
		return e
	}
}

// leftJoinPlan carries the algebra plan plus its FROM-clause SQL.
type leftJoinPlan struct {
	node    algebra.Node
	fromSQL string
}

// LeftJoinPlan builds the left-outer-join plan rooted at root for a
// tree query graph: root LEFT JOIN child ON edge ... in BFS order.
func (m *Mapping) LeftJoinPlan(root string) (*leftJoinPlan, error) {
	if !m.Graph.IsTree() {
		return nil, fmt.Errorf("core: left-join rendering requires a tree query graph")
	}
	if !m.Graph.HasNode(root) {
		return nil, fmt.Errorf("core: root %q not in query graph", root)
	}
	// BFS from root.
	type step struct {
		node string
		pred expr.Expr
	}
	var steps []step
	seen := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, o := range m.Graph.Neighbors(n) {
			if seen[o] {
				continue
			}
			seen[o] = true
			e, _ := m.Graph.EdgeBetween(n, o)
			steps = append(steps, step{node: o, pred: e.Pred})
			queue = append(queue, o)
		}
	}
	rn, _ := m.Graph.Node(root)
	var node algebra.Node = algebra.NewScan(rn.Base, rn.Name)
	fromSQL := scanSQL(rn.Base, rn.Name)
	for _, st := range steps {
		sn, _ := m.Graph.Node(st.node)
		node = algebra.Join{Kind: algebra.LeftJoin, L: node, R: algebra.NewScan(sn.Base, sn.Name), On: st.pred}
		fromSQL += "\n  LEFT JOIN " + scanSQL(sn.Base, sn.Name) + " ON " + st.pred.String()
	}
	return &leftJoinPlan{node: node, fromSQL: fromSQL}, nil
}

func scanSQL(base, alias string) string {
	if alias == base {
		return base
	}
	return base + " AS " + alias
}

// EvaluateViaLeftJoins evaluates the mapping through the left-join
// plan (root must be forced by the filters for this to equal
// Evaluate; see ViewSQL). Exposed for the E6 benchmark and the
// equivalence tests.
func (m *Mapping) EvaluateViaLeftJoins(root string, in *relation.Instance) (*relation.Relation, error) {
	plan, err := m.LeftJoinPlan(root)
	if err != nil {
		return nil, err
	}
	joined, err := plan.node.Eval(in)
	if err != nil {
		return nil, err
	}
	out := relation.New(m.Target.Name, m.TargetScheme())
	for _, d := range joined.Tuples() {
		if !m.SatisfiesSourceFilters(d) {
			continue
		}
		t := m.Transform(d)
		if !m.SatisfiesTargetFilters(t) {
			continue
		}
		out.Add(t)
	}
	return out.Distinct(), nil
}

// Plan builds the algebra plan of the mapping query over a
// materialized D(G) relation.
func (m *Mapping) Plan(dg *relation.Relation) algebra.Node {
	var node algebra.Node = algebra.Materialized{Label: "D(G)", Rel: dg}
	if len(m.SourceFilters) > 0 {
		node = algebra.Select{Child: node, Pred: expr.And(m.SourceFilters...)}
	}
	var cols []algebra.OutputCol
	for _, a := range m.Target.Attrs {
		if c, ok := m.CorrFor(a.Name); ok {
			cols = append(cols, algebra.OutputCol{Name: m.Target.Name + "." + a.Name, Expr: c.Expr})
		} else {
			cols = append(cols, algebra.OutputCol{Name: m.Target.Name + "." + a.Name, Expr: expr.Lit{}})
		}
	}
	node = algebra.Project{Name: m.Target.Name, Child: node, Cols: cols}
	if len(m.TargetFilters) > 0 {
		node = algebra.Select{Child: node, Pred: expr.And(m.TargetFilters...)}
	}
	return algebra.Distinct{Child: node}
}

// DGSQL renders the full disjunction D(G) as executable SQL: for tree
// query graphs, a chain of FULL JOINs along a spanning order (with the
// caveat that a final subsumption sweep is still applied by the
// engine); for cyclic graphs, the ⊕-of-terms form. This is what the
// REPL shows when a user asks what D(G) "is" in SQL terms.
func (m *Mapping) DGSQL() string {
	if order, treeEdges, ok := m.Graph.SpanningTreeOrder(); ok && m.Graph.IsTree() {
		rn, _ := m.Graph.Node(order[0])
		s := scanSQL(rn.Base, rn.Name)
		for i := 1; i < len(order); i++ {
			n, _ := m.Graph.Node(order[i])
			s += "\n  FULL JOIN " + scanSQL(n.Base, n.Name) + " ON " + treeEdges[i].Pred.String()
		}
		return s + "\n  -- minus subsumed tuples"
	}
	var parts []string
	for _, sub := range m.Graph.ConnectedSubsets() {
		parts = append(parts, "F("+strings.Join(sub, ",")+")")
	}
	return strings.Join(parts, " ⊕ ")
}
