// Package core implements the paper's primary contribution: the
// mapping representation M = <G, V, C_S, C_T> (Section 3), mapping
// examples and sufficient illustrations (Section 4), and the mapping
// operators — correspondence operators, data trimming, data walk,
// data chase, and continuous illustration evolution (Section 5).
package core

import (
	"fmt"
	"sort"

	"clio/internal/expr"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Correspondence is a value correspondence (Definition 3.1): a
// function over the values of a set of source attributes that computes
// a value for one target attribute. The function is represented as an
// expression over qualified source columns.
type Correspondence struct {
	// Target is the target attribute this correspondence populates,
	// e.g. Kids.ID.
	Target schema.ColumnRef
	// Expr computes the target value from a data association. Columns
	// it references must belong to nodes of the mapping's query graph.
	Expr expr.Expr
}

// Identity builds the identity correspondence src → tgt (the v1, v2 of
// Figure 2).
func Identity(src string, tgt schema.ColumnRef) Correspondence {
	return Correspondence{Target: tgt, Expr: expr.Col{Name: src}}
}

// FromExpr builds a correspondence computing tgt from an arbitrary
// expression, e.g. Parents.salary + Parents2.salary → Kids.FamilyIncome
// (Example 3.2).
func FromExpr(e expr.Expr, tgt schema.ColumnRef) Correspondence {
	return Correspondence{Target: tgt, Expr: e}
}

// ParseCorrespondence parses "expr -> Rel.Attr" into a Correspondence.
func ParseCorrespondence(s string) (Correspondence, error) {
	const sep = "->"
	i := lastIndex(s, sep)
	if i < 0 {
		return Correspondence{}, fmt.Errorf("core: correspondence %q missing %q", s, sep)
	}
	e, err := expr.Parse(trim(s[:i]))
	if err != nil {
		return Correspondence{}, err
	}
	tgt, err := schema.ParseColumnRef(trim(s[i+len(sep):]))
	if err != nil {
		return Correspondence{}, err
	}
	return Correspondence{Target: tgt, Expr: e}, nil
}

// SourceColumns returns the qualified source columns the
// correspondence reads, sorted and deduplicated.
func (c Correspondence) SourceColumns() []string {
	cols := c.Expr.Columns(nil)
	sort.Strings(cols)
	out := cols[:0]
	for i, col := range cols {
		if i == 0 || cols[i-1] != col {
			out = append(out, col)
		}
	}
	return out
}

// SourceRelations returns the relation occurrences (graph node names)
// the correspondence reads, sorted and deduplicated.
func (c Correspondence) SourceRelations() []string {
	seen := map[string]bool{}
	var out []string
	for _, col := range c.SourceColumns() {
		ref, err := schema.ParseColumnRef(col)
		if err != nil {
			continue
		}
		if !seen[ref.Relation] {
			seen[ref.Relation] = true
			out = append(out, ref.Relation)
		}
	}
	sort.Strings(out)
	return out
}

// Apply computes the correspondence's value on a data association.
func (c Correspondence) Apply(d relation.Tuple) value.Value { return c.Expr.Eval(d) }

// String renders "expr -> Rel.Attr".
func (c Correspondence) String() string {
	return c.Expr.String() + " -> " + c.Target.String()
}

func lastIndex(s, sub string) int {
	for i := len(s) - len(sub); i >= 0; i-- {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}
