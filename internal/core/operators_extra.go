package core

import (
	"fmt"

	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/graph"
	"clio/internal/schema"
)

// Additional data-linking operators (the paper defers these to its
// full version [17]): shrinking a query graph back (undoing a walk or
// chase) and relabeling an edge with an alternative join condition
// from the knowledge base (the Figure 3 mid/fid switch, applied to an
// existing graph).

// RemoveNode returns a copy of m without the named leaf node: the node
// is dropped along with its edge, every correspondence reading it, and
// every filter mentioning it. Only leaves (degree ≤ 1) can be removed,
// so the graph stays connected — removal is the inverse of a walk's
// final step or a chase.
func RemoveNode(m *Mapping, node string) (*Mapping, error) {
	if !m.Graph.HasNode(node) {
		return nil, fmt.Errorf("core: no node %q to remove", node)
	}
	if deg := len(m.Graph.Neighbors(node)); deg > 1 {
		return nil, fmt.Errorf("core: node %q has degree %d; only leaves can be removed", node, deg)
	}
	if m.Graph.NodeCount() == 1 {
		return nil, fmt.Errorf("core: cannot remove the last node")
	}
	out := m.Clone()
	var keep []string
	for _, n := range out.Graph.Nodes() {
		if n != node {
			keep = append(keep, n)
		}
	}
	out.Graph = out.Graph.Induced(keep)

	var corrs []Correspondence
	for _, c := range out.Corrs {
		reads := false
		for _, rel := range c.SourceRelations() {
			if rel == node {
				reads = true
			}
		}
		if !reads {
			corrs = append(corrs, c)
		}
	}
	out.Corrs = corrs
	out.SourceFilters = filtersWithout(out.SourceFilters, node)
	return out, nil
}

func filtersWithout(fs []expr.Expr, node string) []expr.Expr {
	var out []expr.Expr
	for _, f := range fs {
		mentions := false
		for _, col := range f.Columns(nil) {
			if ref, err := schema.ParseColumnRef(col); err == nil && ref.Relation == node {
				mentions = true
				break
			}
		}
		if !mentions {
			out = append(out, f)
		}
	}
	return out
}

// EdgeAlternative is one way to relabel a query-graph edge.
type EdgeAlternative struct {
	Mapping *Mapping
	// Label is the new edge predicate's rendering.
	Label string
}

// RelabelEdge enumerates the alternative join conditions the knowledge
// base offers for the edge between two nodes, returning one mapping
// per alternative label (excluding the current one). This lets a user
// flip, say, the mid edge to the fid edge without re-walking.
func RelabelEdge(m *Mapping, k *discovery.Knowledge, a, b string) ([]EdgeAlternative, error) {
	cur, ok := m.Graph.EdgeBetween(a, b)
	if !ok {
		return nil, fmt.Errorf("core: no edge between %q and %q", a, b)
	}
	na, okA := m.Graph.Node(a)
	nb, okB := m.Graph.Node(b)
	if !okA || !okB {
		return nil, fmt.Errorf("core: unknown edge endpoints")
	}
	var out []EdgeAlternative
	for _, cand := range k.EdgesBetween(na.Base, nb.Base) {
		pred := orientEdge(cand, na, nb)
		if pred == nil || pred.String() == cur.Label() {
			continue
		}
		alt := m.Clone()
		alt.Graph = rebuildWithEdge(alt.Graph, a, b, pred)
		out = append(out, EdgeAlternative{Mapping: alt, Label: pred.String()})
	}
	return out, nil
}

// orientEdge qualifies a knowledge edge's columns with the two node
// names (the knowledge speaks in base relations).
func orientEdge(e discovery.JoinEdge, na, nb graph.Node) expr.Expr {
	switch {
	case e.From.Relation == na.Base && e.To.Relation == nb.Base:
		return expr.Equals(na.Name+"."+e.From.Attr, nb.Name+"."+e.To.Attr)
	case e.From.Relation == nb.Base && e.To.Relation == na.Base:
		return expr.Equals(na.Name+"."+e.To.Attr, nb.Name+"."+e.From.Attr)
	default:
		return nil
	}
}

// rebuildWithEdge clones g with the edge (a, b) carrying a new label.
func rebuildWithEdge(g *graph.QueryGraph, a, b string, pred expr.Expr) *graph.QueryGraph {
	out := graph.New()
	for _, n := range g.Nodes() {
		node, _ := g.Node(n)
		out.MustAddNode(node.Name, node.Base)
	}
	for _, e := range g.Edges() {
		if e.A == a && e.B == b || e.A == b && e.B == a {
			continue
		}
		out.MustAddEdge(e.A, e.B, e.Pred)
	}
	out.MustAddEdge(a, b, pred)
	return out
}

// ApplyTargetConstraints derives C_T filters from declared target
// constraints: every NOT NULL on the target relation becomes a target
// filter (the Section 2 behaviour — "a target constraint may indicate
// that every Kid tuple must have an ID value", from which Clio knows
// not to include associations that lack a Children tuple). Filters
// already present are not duplicated.
func ApplyTargetConstraints(m *Mapping, db *schema.Database) *Mapping {
	out := m.Clone()
	existing := map[string]bool{}
	for _, f := range out.TargetFilters {
		existing[f.String()] = true
	}
	for _, nn := range db.NotNulls {
		if nn.Relation != m.Target.Name {
			continue
		}
		f := expr.IsNull{E: expr.Col{Name: m.Target.Name + "." + nn.Attr}, Negate: true}
		if !existing[f.String()] {
			out.TargetFilters = append(out.TargetFilters, f)
			existing[f.String()] = true
		}
	}
	return out
}
