package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Mapping is the paper's Definition 3.14: a query graph G over source
// relation occurrences, value correspondences V into one target
// relation, source filters C_S (predicates over data associations),
// and target filters C_T (predicates over target tuples). Its
// semantics is the mapping query
//
//	select * from
//	  ( select v_1(...) as B_1, ..., v_m(...) as B_m
//	    from D(G) where C_S )
//	where C_T
type Mapping struct {
	// Name labels the mapping (workspaces display it).
	Name string
	// Target is the target relation scheme this mapping populates.
	Target *schema.Relation
	// Graph is the connected query graph over source occurrences.
	Graph *graph.QueryGraph
	// Corrs are the value correspondences, at most one per target
	// attribute.
	Corrs []Correspondence
	// SourceFilters is C_S: predicates over source attributes,
	// evaluated against data associations.
	SourceFilters []expr.Expr
	// TargetFilters is C_T: predicates over target attributes,
	// evaluated against transformed tuples.
	TargetFilters []expr.Expr
}

// NewMapping creates an empty mapping onto the target relation.
func NewMapping(name string, target *schema.Relation) *Mapping {
	return &Mapping{Name: name, Target: target, Graph: graph.New()}
}

// Clone returns an independent copy (expressions are shared — they are
// immutable).
func (m *Mapping) Clone() *Mapping {
	return &Mapping{
		Name:          m.Name,
		Target:        m.Target,
		Graph:         m.Graph.Clone(),
		Corrs:         append([]Correspondence(nil), m.Corrs...),
		SourceFilters: append([]expr.Expr(nil), m.SourceFilters...),
		TargetFilters: append([]expr.Expr(nil), m.TargetFilters...),
	}
}

// TargetScheme returns the qualified target scheme (Kids.ID, ...).
func (m *Mapping) TargetScheme() *relation.Scheme {
	return relation.SchemeFor(m.Target)
}

// CorrFor returns the correspondence populating the named target
// attribute, if any.
func (m *Mapping) CorrFor(attr string) (Correspondence, bool) {
	for _, c := range m.Corrs {
		if c.Target.Attr == attr {
			return c, true
		}
	}
	return Correspondence{}, false
}

// Validate checks structural well-formedness: the graph is connected,
// edge predicates are strong and reference only their endpoints,
// correspondences target existing attributes of the target relation
// and read columns of graph nodes, and filters reference resolvable
// columns.
func (m *Mapping) Validate(in *relation.Instance) error {
	if m.Graph.NodeCount() == 0 {
		return fmt.Errorf("core: mapping %q has an empty query graph", m.Name)
	}
	if !m.Graph.Connected() {
		return fmt.Errorf("core: mapping %q has a disconnected query graph", m.Name)
	}
	s, err := fd.Scheme(m.Graph, in)
	if err != nil {
		return err
	}
	for _, e := range m.Graph.Edges() {
		endpoints := map[string]bool{e.A: true, e.B: true}
		for _, col := range e.Pred.Columns(nil) {
			ref, err := schema.ParseColumnRef(col)
			if err != nil {
				return fmt.Errorf("core: edge %s—%s references malformed column %q", e.A, e.B, col)
			}
			if !endpoints[ref.Relation] {
				return fmt.Errorf("core: edge %s—%s references foreign node %q", e.A, e.B, ref.Relation)
			}
			if !s.Has(col) {
				return fmt.Errorf("core: edge %s—%s references unknown column %q", e.A, e.B, col)
			}
		}
		if !expr.IsStrong(e.Pred, s) {
			return fmt.Errorf("core: edge %s—%s predicate %q is not strong", e.A, e.B, e.Pred)
		}
	}
	seen := map[string]bool{}
	for _, c := range m.Corrs {
		if c.Target.Relation != m.Target.Name {
			return fmt.Errorf("core: correspondence %v targets foreign relation", c)
		}
		if !m.Target.HasAttr(c.Target.Attr) {
			return fmt.Errorf("core: correspondence %v targets unknown attribute", c)
		}
		if seen[c.Target.Attr] {
			return fmt.Errorf("core: duplicate correspondence for %s", c.Target)
		}
		seen[c.Target.Attr] = true
		for _, col := range c.SourceColumns() {
			if !s.Has(col) {
				return fmt.Errorf("core: correspondence %v reads column %q outside the query graph", c, col)
			}
		}
	}
	for _, f := range m.SourceFilters {
		for _, col := range f.Columns(nil) {
			if !s.Has(col) {
				return fmt.Errorf("core: source filter %q reads unknown column %q", f, col)
			}
		}
	}
	ts := m.TargetScheme()
	for _, f := range m.TargetFilters {
		for _, col := range f.Columns(nil) {
			if !ts.Has(col) {
				return fmt.Errorf("core: target filter %q reads unknown column %q", f, col)
			}
		}
	}
	return nil
}

// DG computes the data associations D(G) of the mapping's query graph.
// Tracing spans nest under the span carried by ctx.
func (m *Mapping) DG(ctx context.Context, in *relation.Instance) (*relation.Relation, error) {
	return fd.Compute(ctx, m.Graph, in)
}

// Transform applies the value correspondences to one data association,
// yielding a target tuple (attributes without a correspondence are
// null). This is Q_φ(M)(d): the transformation without filters.
func (m *Mapping) Transform(d relation.Tuple) relation.Tuple {
	ts := m.TargetScheme()
	vals := make([]value.Value, ts.Arity())
	for _, c := range m.Corrs {
		if i := ts.Index(c.Target.String()); i >= 0 {
			vals[i] = c.Apply(d)
		}
	}
	return relation.NewTuple(ts, vals...)
}

// SatisfiesSourceFilters reports whether d satisfies every C_S
// predicate (3VL: unknown fails).
func (m *Mapping) SatisfiesSourceFilters(d relation.Tuple) bool {
	for _, f := range m.SourceFilters {
		if expr.Truth(f, d) != value.True {
			return false
		}
	}
	return true
}

// SatisfiesTargetFilters reports whether target tuple t satisfies
// every C_T predicate.
func (m *Mapping) SatisfiesTargetFilters(t relation.Tuple) bool {
	for _, f := range m.TargetFilters {
		if expr.Truth(f, t) != value.True {
			return false
		}
	}
	return true
}

// Evaluate runs the mapping query: D(G), source filters,
// transformation, target filters, duplicate elimination. The result is
// the subset of the target relation this mapping produces.
func (m *Mapping) Evaluate(in *relation.Instance) (*relation.Relation, error) {
	d, err := m.DG(context.Background(), in)
	if err != nil {
		return nil, err
	}
	return m.EvaluateOn(d), nil
}

// EvaluateOn runs the mapping query over an already-computed D(G).
func (m *Mapping) EvaluateOn(dg *relation.Relation) *relation.Relation {
	out := relation.New(m.Target.Name, m.TargetScheme())
	for _, d := range dg.Tuples() {
		if !m.SatisfiesSourceFilters(d) {
			continue
		}
		t := m.Transform(d)
		if !m.SatisfiesTargetFilters(t) {
			continue
		}
		out.Add(t)
	}
	return out.Distinct()
}

// MappedAttrs returns the target attribute names that have a
// correspondence, in target-scheme order.
func (m *Mapping) MappedAttrs() []string {
	var out []string
	for _, a := range m.Target.Attrs {
		if _, ok := m.CorrFor(a.Name); ok {
			out = append(out, a.Name)
		}
	}
	return out
}

// Relations returns the graph's node names, sorted.
func (m *Mapping) Relations() []string {
	out := m.Graph.Nodes()
	sort.Strings(out)
	return out
}

// String renders a compact summary of the mapping.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mapping %s -> %s\n", m.Name, m.Target.Name)
	b.WriteString(m.Graph.String())
	for _, c := range m.Corrs {
		fmt.Fprintf(&b, "  corr: %s\n", c)
	}
	for _, f := range m.SourceFilters {
		fmt.Fprintf(&b, "  where (source): %s\n", f)
	}
	for _, f := range m.TargetFilters {
		fmt.Fprintf(&b, "  where (target): %s\n", f)
	}
	return b.String()
}
