package core

import (
	"context"
	"fmt"

	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/relation"
)

// Evolution instrumentation.
var (
	cEvolveRuns  = obs.GetCounter("core.evolve.runs")
	cEvolveFresh = obs.GetCounter("core.evolve.fresh")
)

// This file implements continuous evolution of illustrations
// (Section 5.3): when an operator turns M into M' with G an induced
// subgraph of G', each old example is extended rather than replaced,
// so the user keeps her place in familiar data.
//
// The key fact (provable from the antichain structure of D(G)): every
// old data association d ∈ D(G) has at least one extension
// d' ∈ D(G') whose projection onto the old scheme equals d exactly.
// Evolve therefore maps each old example to its extensions, marks them
// Inherited, and tops the result up to sufficiency with Fresh
// examples.

// Evolved is the result of evolving an illustration.
type Evolved struct {
	Illustration
	// Extended counts old examples that found at least one extension.
	Extended int
	// Old is the number of old examples.
	Old int
	// Fresh counts examples added only to restore sufficiency.
	Fresh int
}

// ContinuityRatio is Extended/Old (1.0 when every old example
// survived; it always is when G is an induced subgraph of G' over the
// same instance). NaN-free: an empty old illustration evolves with
// ratio 1.
func (e Evolved) ContinuityRatio() float64 {
	if e.Old == 0 {
		return 1
	}
	return float64(e.Extended) / float64(e.Old)
}

// Evolve computes the continuous evolution of oldIll under the new
// mapping. The old mapping's query graph must be a subgraph of the new
// one (node names and attributes are matched by qualified name).
func Evolve(ctx context.Context, oldIll Illustration, newM *Mapping, in *relation.Instance) (Evolved, error) {
	return EvolveFrom(ctx, oldIll, nil, newM, in)
}

// EvolveFrom is Evolve with an optional previously computed D(G) of
// the old mapping: when the new graph extends the old one by a single
// leaf (the walk/chase case), D(G′) is maintained incrementally with
// one full outer join instead of recomputed (see fd.ExtendLeaf).
func EvolveFrom(ctx context.Context, oldIll Illustration, oldDG *relation.Relation, newM *Mapping, in *relation.Instance) (Evolved, error) {
	ctx, span := obs.StartSpan(ctx, "core.evolve")
	defer span.End()
	newDG, err := fd.ComputeIncremental(ctx, oldDG, oldIll.Mapping.Graph, newM.Graph, in)
	if err != nil {
		return Evolved{}, err
	}
	ev, err := EvolveOnDG(ctx, oldIll, newM, in, newDG)
	if err != nil {
		return Evolved{}, err
	}
	span.SetInt("old", int64(ev.Old))
	span.SetInt("extended", int64(ev.Extended))
	span.SetInt("fresh", int64(ev.Fresh))
	return ev, nil
}

// EvolveOnDG evolves an illustration given an already materialized
// D(G′) of the new mapping (workspaces cache these).
func EvolveOnDG(ctx context.Context, oldIll Illustration, newM *Mapping, in *relation.Instance, newDG *relation.Relation) (Evolved, error) {
	ctx, span := obs.StartSpan(ctx, "core.evolve_on_dg")
	defer span.End()
	cEvolveRuns.Inc()
	oldScheme, err := fd.Scheme(oldIll.Mapping.Graph, in)
	if err != nil {
		return Evolved{}, err
	}
	newScheme, err := fd.Scheme(newM.Graph, in)
	if err != nil {
		return Evolved{}, err
	}
	for _, n := range oldScheme.Names() {
		if !newScheme.Has(n) {
			return Evolved{}, fmt.Errorf("core: evolution target lost attribute %q (old graph not a subgraph)", n)
		}
	}
	full, err := ExamplesOn(ctx, newM, in, newDG)
	if err != nil {
		return Evolved{}, err
	}

	// Index old examples by their data association key; new
	// associations are matched by projecting onto the old scheme via
	// precomputed positions (KeyOn produces the same encoding as Key).
	oldByKey := map[string]int{}
	for i, e := range oldIll.Examples {
		oldByKey[e.Assoc.Key()] = i
	}
	extended := make([]bool, len(oldIll.Examples))

	out := Evolved{Illustration: Illustration{Mapping: newM}, Old: len(oldIll.Examples)}
	chosen := make([]bool, len(full.Examples))
	var projPos []int
	if len(full.Examples) > 0 {
		projPos = full.Examples[0].Assoc.Scheme().Positions(oldScheme.Names()...)
	}
	for i, e := range full.Examples {
		if j, ok := oldByKey[e.Assoc.KeyOn(projPos)]; ok {
			extended[j] = true
			inherited := e
			inherited.Inherited = true
			out.Examples = append(out.Examples, inherited)
			chosen[i] = true
		}
	}
	for _, x := range extended {
		if x {
			out.Extended++
		}
	}

	// Top up to sufficiency with fresh examples: greedy cover over the
	// requirements not yet covered by the inherited examples.
	reqs, covers := requirementsOf(newM, full.Examples)
	covered := map[string]bool{}
	for i := range full.Examples {
		if chosen[i] {
			for _, k := range covers[i] {
				covered[k] = true
			}
		}
	}
	uncovered := 0
	for k := range reqs {
		if !covered[k] {
			uncovered++
		}
	}
	for uncovered > 0 {
		best, bestGain := -1, 0
		for i := range full.Examples {
			if chosen[i] {
				continue
			}
			gain := 0
			for _, k := range covers[i] {
				if !covered[k] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		out.Examples = append(out.Examples, full.Examples[best])
		out.Fresh++
		for _, k := range covers[best] {
			if !covered[k] {
				covered[k] = true
				uncovered--
			}
		}
	}
	cEvolveFresh.Add(int64(out.Fresh))
	span.SetInt("examples", int64(len(out.Examples)))
	return out, nil
}
