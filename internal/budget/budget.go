// Package budget enforces per-computation resource limits on the
// mapping engine. D(G) is a full-disjunction instance whose size can
// blow up combinatorially with the query graph, so a long-lived
// service must be able to say "this computation may materialize at
// most N rows / M bytes" and get a typed error back instead of an
// OOM kill.
//
// A Budget travels in a context.Context as a shared *Tracker; every
// operator that materializes tuples (joins, cross products, padding)
// charges the tracker as it allocates. The tracker is cumulative over
// all intermediates of one computation — the quantity that actually
// bounds resident memory — and safe for concurrent workers.
//
// The package exists separately from fd so that algebra (which fd
// imports) can charge budgets without an import cycle; fd re-exports
// the user-facing names (fd.Budget, fd.ErrBudgetExceeded).
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Budget caps one computation. Zero fields are unlimited.
type Budget struct {
	// MaxRows bounds the total number of tuples materialized during
	// the computation, intermediates included.
	MaxRows int64
	// MaxBytes bounds the approximate bytes of those tuples.
	MaxBytes int64
}

// Unlimited reports whether the budget imposes no limit.
func (b Budget) Unlimited() bool { return b.MaxRows <= 0 && b.MaxBytes <= 0 }

// ErrExceeded is the sentinel matched by errors.Is for any budget
// violation.
var ErrExceeded = errors.New("budget exceeded")

// Error reports which limit a computation exceeded. It matches
// ErrExceeded under errors.Is.
type Error struct {
	// Limit names the exceeded dimension: "rows" or "bytes".
	Limit string
	// Max is the configured cap, Got the amount reached.
	Max, Got int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("budget exceeded: %s limit %d reached %d", e.Limit, e.Max, e.Got)
}

// Is matches the ErrExceeded sentinel.
func (e *Error) Is(target error) bool { return target == ErrExceeded }

// Tracker accumulates charges against a budget. A nil tracker accepts
// every charge, so call sites charge unconditionally.
type Tracker struct {
	b     Budget
	rows  atomic.Int64
	bytes atomic.Int64
}

// NewTracker creates a tracker for the budget. An unlimited budget
// yields a nil tracker (every charge is free).
func NewTracker(b Budget) *Tracker {
	if b.Unlimited() {
		return nil
	}
	return &Tracker{b: b}
}

// Charge reserves rows/bytes for newly materialized tuples and
// returns a *Error if either limit would be exceeded. A failed charge
// is rolled back — callers drop the tuple on error, so the counters
// track resources actually retained, which keeps Rows()/Bytes()
// within the caps even under concurrent workers racing past the
// limit. Safe for concurrent use.
func (t *Tracker) Charge(rows, bytes int64) error {
	if t == nil {
		return nil
	}
	r := t.rows.Add(rows)
	by := t.bytes.Add(bytes)
	if t.b.MaxRows > 0 && r > t.b.MaxRows {
		t.rows.Add(-rows)
		t.bytes.Add(-bytes)
		return &Error{Limit: "rows", Max: t.b.MaxRows, Got: r}
	}
	if t.b.MaxBytes > 0 && by > t.b.MaxBytes {
		t.rows.Add(-rows)
		t.bytes.Add(-bytes)
		return &Error{Limit: "bytes", Max: t.b.MaxBytes, Got: by}
	}
	return nil
}

// Rows returns the total rows charged so far.
func (t *Tracker) Rows() int64 {
	if t == nil {
		return 0
	}
	return t.rows.Load()
}

// Bytes returns the total approximate bytes charged so far.
func (t *Tracker) Bytes() int64 {
	if t == nil {
		return 0
	}
	return t.bytes.Load()
}

// Limits returns the tracked budget (zero for a nil tracker).
func (t *Tracker) Limits() Budget {
	if t == nil {
		return Budget{}
	}
	return t.b
}

type ctxKey struct{}

// With attaches a tracker to the context. Operators below retrieve it
// with FromContext and charge their materializations against it.
func With(ctx context.Context, t *Tracker) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's tracker, or nil (unlimited).
func FromContext(ctx context.Context) *Tracker {
	t, _ := ctx.Value(ctxKey{}).(*Tracker)
	return t
}
