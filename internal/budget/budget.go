// Package budget enforces per-computation resource limits on the
// mapping engine. D(G) is a full-disjunction instance whose size can
// blow up combinatorially with the query graph, so a long-lived
// service must be able to say "this computation may materialize at
// most N rows / M bytes" and get a typed error back instead of an
// OOM kill.
//
// A Budget travels in a context.Context as a shared *Tracker; every
// operator that materializes tuples (joins, cross products, padding)
// charges the tracker as it allocates. The tracker is cumulative over
// all intermediates of one computation — the quantity that actually
// bounds resident memory — and safe for concurrent workers.
//
// The package exists separately from fd so that algebra (which fd
// imports) can charge budgets without an import cycle; fd re-exports
// the user-facing names (fd.Budget, fd.ErrBudgetExceeded).
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Budget caps one computation. Zero fields are unlimited.
type Budget struct {
	// MaxRows bounds the total number of tuples materialized during
	// the computation, intermediates included.
	MaxRows int64
	// MaxBytes bounds the approximate bytes of those tuples.
	MaxBytes int64
	// SpillDir, when non-empty, turns MaxRows/MaxBytes from a hard
	// refusal into an in-memory cap: operators that support spilling
	// (hash-join build sides, D(G) distinct/subsumption state) write
	// overflow partitions to temp files under this directory instead
	// of aborting, and the trackers switch to resident accounting
	// (Refund returns capacity as state moves to disk or is released).
	SpillDir string
	// MaxSpillBytes bounds the bytes concurrently resident in spill
	// files (0 = unlimited disk). Exceeding it aborts with a typed
	// error whose Spill state is "disk_cap_exceeded".
	MaxSpillBytes int64
	// SpillRecursionDepth bounds how many times an oversized spill
	// partition may be re-partitioned with a fresh hash salt before
	// the operator gives up with a typed abort naming
	// SpillRecursionExhausted. Zero means DefaultSpillRecursionDepth;
	// negative disables recursion (an oversized partition aborts
	// immediately, the pre-recursion behavior).
	SpillRecursionDepth int
}

// DefaultSpillRecursionDepth is the recursion bound applied when
// Budget.SpillRecursionDepth is zero. Each level divides a partition by
// the fan-out (16), so three levels absorb ~4096× skew over one
// partition before giving up.
const DefaultSpillRecursionDepth = 3

// Unlimited reports whether the budget imposes no limit. A spill
// configuration without an in-memory cap is still unlimited: there is
// nothing to spill around.
func (b Budget) Unlimited() bool { return b.MaxRows <= 0 && b.MaxBytes <= 0 }

// The spill states reported by Error.Spill on budget aborts, so
// operators can tell "enable -spill-dir" apart from "raise
// -max-spill-bytes".
const (
	// SpillDisabled: no spill directory is configured; the memory cap
	// is a hard refusal.
	SpillDisabled = "disabled"
	// SpillEnabled: spilling is configured but this state is not
	// spillable (or spilled state still exceeded the in-memory cap).
	SpillEnabled = "enabled"
	// SpillDiskCap: the MaxSpillBytes disk cap itself was exceeded.
	SpillDiskCap = "disk_cap_exceeded"
	// SpillRecursionExhausted: an oversized spill partition was
	// re-partitioned with fresh salts down to the recursion bound and
	// still exceeded the in-memory cap (a hot key whose tuples alone
	// cannot fit: salted re-hashing never separates equal keys).
	SpillRecursionExhausted = "recursion_exhausted"
)

// ErrExceeded is the sentinel matched by errors.Is for any budget
// violation.
var ErrExceeded = errors.New("budget exceeded")

// Error reports which limit a computation exceeded. It matches
// ErrExceeded under errors.Is.
type Error struct {
	// Limit names the exceeded dimension: "rows", "bytes", or "spill".
	Limit string
	// Max is the configured cap, Got the amount reached.
	Max, Got int64
	// Spill names the spill configuration at abort time — one of
	// SpillDisabled, SpillEnabled, SpillDiskCap — so the error tells
	// an operator which knob to turn. Empty on errors built before
	// the spill tier existed (treated as SpillDisabled downstream).
	Spill string
}

func (e *Error) Error() string {
	if e.Spill != "" {
		return fmt.Sprintf("budget exceeded: %s limit %d reached %d (spill %s)", e.Limit, e.Max, e.Got, e.Spill)
	}
	return fmt.Sprintf("budget exceeded: %s limit %d reached %d", e.Limit, e.Max, e.Got)
}

// Is matches the ErrExceeded sentinel.
func (e *Error) Is(target error) bool { return target == ErrExceeded }

// Tracker accumulates charges against a budget. A nil tracker accepts
// every charge, so call sites charge unconditionally.
//
// Without a spill directory the tracker is cumulative: every charge
// sticks, so the caps bound the total materialization of the
// computation. With SpillDir set, spilling operators Refund charges as
// tuples move to disk or transient batches are released, so the caps
// bound the state resident in memory at any moment instead.
type Tracker struct {
	b     Budget
	rows  atomic.Int64
	bytes atomic.Int64
	// spill tracks bytes currently resident in spill files; parts
	// counts partition files created and written the cumulative bytes
	// ever spilled (for EXPLAIN and /statusz — resident spill returns
	// to zero when partitions close, so reporting needs the monotone
	// counters).
	spill   atomic.Int64
	parts   atomic.Int64
	written atomic.Int64
	// Spill-tier statistics recorded by the partitioning operators so
	// the picker and EXPLAIN can reason about partition shape without
	// re-reading the files: per-partition maxima/sums (skew), recursion
	// events with the deepest level reached, and prefetch hits.
	partCount     atomic.Int64
	partMaxTuples atomic.Int64
	partMaxBytes  atomic.Int64
	partSumBytes  atomic.Int64
	recursions    atomic.Int64
	depthMax      atomic.Int64
	prefetchHits  atomic.Int64
}

// NewTracker creates a tracker for the budget. An unlimited budget
// yields a nil tracker (every charge is free).
func NewTracker(b Budget) *Tracker {
	if b.Unlimited() {
		return nil
	}
	return &Tracker{b: b}
}

// Charge reserves rows/bytes for newly materialized tuples and
// returns a *Error if either limit would be exceeded. A failed charge
// is rolled back — callers drop the tuple on error, so the counters
// track resources actually retained, which keeps Rows()/Bytes()
// within the caps even under concurrent workers racing past the
// limit. Safe for concurrent use.
func (t *Tracker) Charge(rows, bytes int64) error {
	if t == nil {
		return nil
	}
	r := t.rows.Add(rows)
	by := t.bytes.Add(bytes)
	if t.b.MaxRows > 0 && r > t.b.MaxRows {
		t.rows.Add(-rows)
		t.bytes.Add(-bytes)
		return &Error{Limit: "rows", Max: t.b.MaxRows, Got: r, Spill: t.SpillState()}
	}
	if t.b.MaxBytes > 0 && by > t.b.MaxBytes {
		t.rows.Add(-rows)
		t.bytes.Add(-bytes)
		return &Error{Limit: "bytes", Max: t.b.MaxBytes, Got: by, Spill: t.SpillState()}
	}
	return nil
}

// ChargeHeadroom reserves rows/bytes like Charge but refuses — without
// treating it as a budget violation — unless the post-charge usage
// stays at least slackRows/slackBytes below the caps. Prefetch workers
// use it: an opportunistic load must never consume the headroom the
// foreground join needs for its own output batches, so a refused
// headroom charge is a cache miss (the caller retries with a plain
// Charge once it is the foreground), not an abort. The returned bool
// reports whether the charge was taken.
func (t *Tracker) ChargeHeadroom(rows, bytes, slackRows, slackBytes int64) bool {
	if t == nil {
		return true
	}
	r := t.rows.Add(rows)
	by := t.bytes.Add(bytes)
	if (t.b.MaxRows > 0 && r > t.b.MaxRows-slackRows) ||
		(t.b.MaxBytes > 0 && by > t.b.MaxBytes-slackBytes) {
		t.rows.Add(-rows)
		t.bytes.Add(-bytes)
		return false
	}
	return true
}

// Refund returns previously charged rows/bytes to the budget. Only
// spilling operators call it (resident accounting); the cumulative
// no-spill paths never refund, so their behavior is unchanged.
func (t *Tracker) Refund(rows, bytes int64) {
	if t == nil {
		return
	}
	t.rows.Add(-rows)
	t.bytes.Add(-bytes)
}

// SpillEnabled reports whether the budget allows spilling to disk.
func (t *Tracker) SpillEnabled() bool { return t != nil && t.b.SpillDir != "" }

// SpillDir returns the configured spill directory ("" when disabled).
func (t *Tracker) SpillDir() string {
	if t == nil {
		return ""
	}
	return t.b.SpillDir
}

// SpillState names the tracker's spill configuration for Error.Spill.
func (t *Tracker) SpillState() string {
	if t.SpillEnabled() {
		return SpillEnabled
	}
	return SpillDisabled
}

// ChargeSpill reserves bytes of spill-file capacity. It fails with a
// typed *Error (Limit "spill", Spill state SpillDiskCap) when the
// MaxSpillBytes cap would be exceeded; the failed charge is rolled
// back, mirroring Charge.
func (t *Tracker) ChargeSpill(bytes int64) error {
	if t == nil {
		return nil
	}
	got := t.spill.Add(bytes)
	if t.b.MaxSpillBytes > 0 && got > t.b.MaxSpillBytes {
		t.spill.Add(-bytes)
		return &Error{Limit: "spill", Max: t.b.MaxSpillBytes, Got: got, Spill: SpillDiskCap}
	}
	t.written.Add(bytes)
	return nil
}

// RefundSpill returns spill-file capacity as partition files are
// removed.
func (t *Tracker) RefundSpill(bytes int64) {
	if t == nil {
		return
	}
	t.spill.Add(-bytes)
}

// SpillBytes returns the bytes currently resident in spill files.
func (t *Tracker) SpillBytes() int64 {
	if t == nil {
		return 0
	}
	return t.spill.Load()
}

// AddSpillParts records n partition files created under this tracker.
func (t *Tracker) AddSpillParts(n int64) {
	if t == nil {
		return
	}
	t.parts.Add(n)
}

// SpillParts returns the partition files created under this tracker.
func (t *Tracker) SpillParts() int64 {
	if t == nil {
		return 0
	}
	return t.parts.Load()
}

// SpillWritten returns the cumulative bytes ever written to spill
// files under this tracker (never refunded, unlike SpillBytes).
func (t *Tracker) SpillWritten() int64 {
	if t == nil {
		return 0
	}
	return t.written.Load()
}

// RecursionLimit returns the effective spill recursion depth bound:
// the configured SpillRecursionDepth, DefaultSpillRecursionDepth when
// zero, and 0 (recursion disabled) when negative or for a nil tracker.
func (t *Tracker) RecursionLimit() int {
	if t == nil {
		return 0
	}
	switch {
	case t.b.SpillRecursionDepth < 0:
		return 0
	case t.b.SpillRecursionDepth == 0:
		return DefaultSpillRecursionDepth
	default:
		return t.b.SpillRecursionDepth
	}
}

// NotePartition records one spill partition's final tuple/byte counts
// so the picker and EXPLAIN can estimate skew and recursion depth
// without re-reading the files. Safe for concurrent use.
func (t *Tracker) NotePartition(tuples, bytes int64) {
	if t == nil {
		return
	}
	t.partCount.Add(1)
	t.partSumBytes.Add(bytes)
	atomicMax(&t.partMaxTuples, tuples)
	atomicMax(&t.partMaxBytes, bytes)
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PartitionStats returns the recorded partition count and the largest
// partition's tuple/byte counts.
func (t *Tracker) PartitionStats() (count, maxTuples, maxBytes int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.partCount.Load(), t.partMaxTuples.Load(), t.partMaxBytes.Load()
}

// PartitionSkew reports how unbalanced the recorded partitions are:
// the largest partition's share of the total bytes, scaled by the
// partition count (1.0 = perfectly uniform, n = everything in one of n
// partitions). Zero when nothing was recorded.
func (t *Tracker) PartitionSkew() float64 {
	if t == nil {
		return 0
	}
	n, _, max := t.PartitionStats()
	sum := t.partSumBytes.Load()
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(max) * float64(n) / float64(sum)
}

// NoteRecursion records one re-partitioning event at the given depth
// (1 = first recursion level).
func (t *Tracker) NoteRecursion(depth int) {
	if t == nil {
		return
	}
	t.recursions.Add(1)
	atomicMax(&t.depthMax, int64(depth))
}

// SpillRecursions returns how many partitions were re-partitioned.
func (t *Tracker) SpillRecursions() int64 {
	if t == nil {
		return 0
	}
	return t.recursions.Load()
}

// SpillDepth returns the deepest recursion level reached (0 = no
// partition needed re-partitioning).
func (t *Tracker) SpillDepth() int64 {
	if t == nil {
		return 0
	}
	return t.depthMax.Load()
}

// NotePrefetchHit records one partition pair that was consumed from
// the prefetch worker instead of being loaded serially.
func (t *Tracker) NotePrefetchHit() {
	if t == nil {
		return
	}
	t.prefetchHits.Add(1)
}

// PrefetchHits returns the recorded prefetch hit count.
func (t *Tracker) PrefetchHits() int64 {
	if t == nil {
		return 0
	}
	return t.prefetchHits.Load()
}

// SpillDepthLowerBound returns a certain lower bound on the recursion
// depth needed before a partition whose load charges at least `load`
// units can fit under `cap`: one re-partition level divides a
// partition across at most `fanout` children, so even a perfectly
// uniform split leaves a child of at least load/fanout. The bound is
// exact for rows (one frame = one resident row) and conservative for
// bytes (frame bytes on disk are always below the resident
// ApproxBytes of the decoded tuple), so "lower bound > depth limit"
// proves every recursive replay must fail — the picker may abort
// before paying the I/O. Returns 0 when cap is unlimited or load
// already fits.
func SpillDepthLowerBound(load, cap int64, fanout int) int {
	if cap <= 0 || fanout < 2 {
		return 0
	}
	d := 0
	for load > cap && d <= 64 {
		load = (load + int64(fanout) - 1) / int64(fanout)
		d++
	}
	return d
}

// Rows returns the total rows charged so far.
func (t *Tracker) Rows() int64 {
	if t == nil {
		return 0
	}
	return t.rows.Load()
}

// Bytes returns the total approximate bytes charged so far.
func (t *Tracker) Bytes() int64 {
	if t == nil {
		return 0
	}
	return t.bytes.Load()
}

// Limits returns the tracked budget (zero for a nil tracker).
func (t *Tracker) Limits() Budget {
	if t == nil {
		return Budget{}
	}
	return t.b
}

type ctxKey struct{}

// With attaches a tracker to the context. Operators below retrieve it
// with FromContext and charge their materializations against it.
func With(ctx context.Context, t *Tracker) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's tracker, or nil (unlimited).
func FromContext(ctx context.Context) *Tracker {
	t, _ := ctx.Value(ctxKey{}).(*Tracker)
	return t
}

// Flow meters one operator's output batches. Without spilling it
// charges cumulatively, exactly like calling Tracker.Charge directly.
// With spilling enabled the batches are transient — the consumer either
// retains them under its own sink charges or spills them — so each
// Charge first refunds the previous batch: at any moment one in-flight
// batch per operator is resident, not the whole stream. Not safe for
// concurrent use (one Flow per iterator).
type Flow struct {
	t          *Tracker
	rows, byts int64
}

// NewFlow returns a batch meter for the tracker (nil tracker → nil
// Flow, which accepts every charge).
func (t *Tracker) NewFlow() *Flow {
	if t == nil {
		return nil
	}
	return &Flow{t: t}
}

// Charge meters one output batch; see Flow.
func (f *Flow) Charge(rows, bytes int64) error {
	if f == nil {
		return nil
	}
	if !f.t.SpillEnabled() {
		return f.t.Charge(rows, bytes)
	}
	f.t.Refund(f.rows, f.byts)
	f.rows, f.byts = 0, 0
	if err := f.t.Charge(rows, bytes); err != nil {
		return err
	}
	f.rows, f.byts = rows, bytes
	return nil
}

// Release refunds the in-flight batch (spill mode only; cumulative
// charges stick). Iterators call it on Close.
func (f *Flow) Release() {
	if f == nil || !f.t.SpillEnabled() {
		return
	}
	f.t.Refund(f.rows, f.byts)
	f.rows, f.byts = 0, 0
}
