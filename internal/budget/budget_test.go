package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilTrackerIsUnlimited(t *testing.T) {
	var tr *Tracker
	if err := tr.Charge(1<<40, 1<<50); err != nil {
		t.Fatalf("nil tracker charged: %v", err)
	}
	if NewTracker(Budget{}) != nil {
		t.Error("unlimited budget should yield a nil tracker")
	}
}

func TestRowLimit(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 10})
	for i := 0; i < 10; i++ {
		if err := tr.Charge(1, 0); err != nil {
			t.Fatalf("charge %d within budget failed: %v", i, err)
		}
	}
	err := tr.Charge(1, 0)
	if err == nil {
		t.Fatal("11th row did not exceed MaxRows=10")
	}
	var be *Error
	if !errors.As(err, &be) || be.Limit != "rows" || be.Max != 10 {
		t.Fatalf("wrong error detail: %#v", err)
	}
	if !errors.Is(err, ErrExceeded) {
		t.Error("budget error does not match ErrExceeded")
	}
}

func TestByteLimit(t *testing.T) {
	tr := NewTracker(Budget{MaxBytes: 100})
	if err := tr.Charge(1, 60); err != nil {
		t.Fatal(err)
	}
	err := tr.Charge(1, 60)
	var be *Error
	if !errors.As(err, &be) || be.Limit != "bytes" {
		t.Fatalf("want bytes violation, got %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context has a tracker")
	}
	tr := NewTracker(Budget{MaxRows: 5})
	ctx = With(ctx, tr)
	if FromContext(ctx) != tr {
		t.Fatal("tracker did not round-trip through context")
	}
}

// Concurrent charges must be race-free and the limit must trip within
// one charge of the cap regardless of interleaving.
func TestConcurrentCharges(t *testing.T) {
	const workers, per = 8, 1000
	tr := NewTracker(Budget{MaxRows: workers * per / 2})
	var wg sync.WaitGroup
	var tripped sync.Once
	errc := make(chan error, 1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tr.Charge(1, 8); err != nil {
					tripped.Do(func() { errc <- err })
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrExceeded) {
			t.Fatalf("unexpected error: %v", err)
		}
	default:
		t.Fatal("no worker hit the shared budget")
	}
}
