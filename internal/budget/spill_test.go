package budget

import (
	"errors"
	"testing"
)

// Without a spill directory a Flow must charge cumulatively — exactly
// like calling Charge directly — so pre-spill accounting semantics are
// untouched.
func TestBudgetFlowCumulativeWithoutSpill(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 10})
	f := tr.NewFlow()
	for i := 0; i < 5; i++ {
		if err := f.Charge(2, 100); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	if tr.Rows() != 10 {
		t.Fatalf("cumulative rows = %d, want 10", tr.Rows())
	}
	if err := f.Charge(1, 0); err == nil {
		t.Fatal("11th cumulative row accepted")
	}
	f.Release() // must be a no-op in cumulative mode
	if tr.Rows() != 10 {
		t.Fatalf("Release refunded cumulative charges: rows = %d", tr.Rows())
	}
}

// With a spill directory the Flow holds one in-flight batch: each
// charge refunds the previous batch, and Release refunds the last.
func TestBudgetFlowResidentWithSpill(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 3, SpillDir: t.TempDir()})
	f := tr.NewFlow()
	for i := 0; i < 10; i++ {
		if err := f.Charge(3, 50); err != nil {
			t.Fatalf("batch %d refused: %v", i, err)
		}
		if tr.Rows() != 3 {
			t.Fatalf("batch %d: resident rows = %d, want 3", i, tr.Rows())
		}
	}
	if err := f.Charge(4, 50); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// The failed charge rolled back, and the previous batch was already
	// refunded: nothing is resident.
	if tr.Rows() != 0 {
		t.Fatalf("rows after failed batch = %d, want 0", tr.Rows())
	}
	if err := f.Charge(2, 10); err != nil {
		t.Fatalf("flow unusable after failed batch: %v", err)
	}
	f.Release()
	if tr.Rows() != 0 || tr.Bytes() != 0 {
		t.Fatalf("Release left %d rows / %d bytes", tr.Rows(), tr.Bytes())
	}
}

// A nil Flow (nil tracker) must accept everything.
func TestBudgetFlowNilAcceptsAll(t *testing.T) {
	var tr *Tracker
	f := tr.NewFlow()
	if err := f.Charge(1<<40, 1<<40); err != nil {
		t.Fatalf("nil flow refused: %v", err)
	}
	f.Release()
}

// Refund must return capacity so a spilling operator can keep working
// under a resident cap.
func TestBudgetRefundReturnsCapacity(t *testing.T) {
	tr := NewTracker(Budget{MaxBytes: 100, SpillDir: t.TempDir()})
	if err := tr.Charge(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Charge(1, 1); err == nil {
		t.Fatal("over-cap charge accepted")
	}
	tr.Refund(1, 100)
	if err := tr.Charge(1, 100); err != nil {
		t.Fatalf("charge after refund refused: %v", err)
	}
}

// Charge errors must name the tracker's spill state so the 413
// envelope can tell "disabled" from "enabled".
func TestBudgetErrorCarriesSpillState(t *testing.T) {
	var be *Error
	err := NewTracker(Budget{MaxRows: 1}).Charge(2, 0)
	if !errors.As(err, &be) || be.Spill != SpillDisabled {
		t.Fatalf("no-spill error state = %+v, want %q", be, SpillDisabled)
	}
	err = NewTracker(Budget{MaxRows: 1, SpillDir: t.TempDir()}).Charge(2, 0)
	if !errors.As(err, &be) || be.Spill != SpillEnabled {
		t.Fatalf("spill-enabled error state = %+v, want %q", be, SpillEnabled)
	}
}

// ChargeSpill enforces the disk cap with rollback and tracks the
// monotone written counter only on success.
func TestBudgetChargeSpillDiskCap(t *testing.T) {
	tr := NewTracker(Budget{MaxBytes: 1, SpillDir: t.TempDir(), MaxSpillBytes: 100})
	if err := tr.ChargeSpill(60); err != nil {
		t.Fatal(err)
	}
	err := tr.ChargeSpill(41)
	var be *Error
	if !errors.As(err, &be) || be.Limit != "spill" || be.Spill != SpillDiskCap {
		t.Fatalf("disk cap error = %v, want limit spill, state %q", err, SpillDiskCap)
	}
	if tr.SpillBytes() != 60 {
		t.Fatalf("failed spill charge not rolled back: %d", tr.SpillBytes())
	}
	if tr.SpillWritten() != 60 {
		t.Fatalf("written counter = %d, want 60 (failures excluded)", tr.SpillWritten())
	}
	tr.RefundSpill(60)
	if tr.SpillBytes() != 0 || tr.SpillWritten() != 60 {
		t.Fatalf("refund changed the wrong counter: resident %d, written %d", tr.SpillBytes(), tr.SpillWritten())
	}
}

// RecursionLimit encodes "negative = disabled, zero = default" so the
// serve flag's 0 → -1 mapping and the tracker agree on what "off"
// means.
func TestBudgetRecursionLimitEncoding(t *testing.T) {
	var nilTr *Tracker
	if got := nilTr.RecursionLimit(); got != 0 {
		t.Fatalf("nil tracker limit = %d, want 0", got)
	}
	cases := []struct {
		depth int
		want  int
	}{
		{-1, 0},
		{-7, 0},
		{0, DefaultSpillRecursionDepth},
		{1, 1},
		{5, 5},
	}
	for _, c := range cases {
		tr := NewTracker(Budget{MaxRows: 1, SpillRecursionDepth: c.depth})
		if got := tr.RecursionLimit(); got != c.want {
			t.Fatalf("RecursionLimit(depth=%d) = %d, want %d", c.depth, got, c.want)
		}
	}
}

// ChargeHeadroom refuses when the charge would eat into the reserved
// slack and leaves usage untouched on refusal; within headroom it
// behaves like Charge.
func TestBudgetChargeHeadroom(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 100, MaxBytes: 1000})
	if !tr.ChargeHeadroom(50, 500, 10, 100) {
		t.Fatal("charge well under caps refused")
	}
	// 50+45 = 95 > 100-10: refused, and usage must stay at 50/500.
	if tr.ChargeHeadroom(45, 0, 10, 100) {
		t.Fatal("charge into row slack accepted")
	}
	if tr.Rows() != 50 || tr.Bytes() != 500 {
		t.Fatalf("refused charge leaked: rows=%d bytes=%d", tr.Rows(), tr.Bytes())
	}
	// 500+401 = 901 > 1000-100: byte slack refuses independently.
	if tr.ChargeHeadroom(0, 401, 10, 100) {
		t.Fatal("charge into byte slack accepted")
	}
	// Exactly at the slack boundary is allowed (usage == cap-slack).
	if !tr.ChargeHeadroom(40, 400, 10, 100) {
		t.Fatal("charge up to the slack boundary refused")
	}
	if tr.Rows() != 90 || tr.Bytes() != 900 {
		t.Fatalf("usage after boundary charge: rows=%d bytes=%d", tr.Rows(), tr.Bytes())
	}
	// A nil tracker always accepts (unlimited budget).
	var nilTr *Tracker
	if !nilTr.ChargeHeadroom(1, 1, 1, 1) {
		t.Fatal("nil tracker refused a headroom charge")
	}
}

// Partition statistics: count, max tuples/bytes, and the skew ratio
// max*n/sum (1.0 uniform, n fully concentrated).
func TestBudgetPartitionStats(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 1 << 20})
	if n, _, _ := tr.PartitionStats(); n != 0 || tr.PartitionSkew() != 0 {
		t.Fatal("fresh tracker has partition stats")
	}
	tr.NotePartition(10, 100)
	tr.NotePartition(30, 300)
	tr.NotePartition(20, 200)
	n, maxT, maxB := tr.PartitionStats()
	if n != 3 || maxT != 30 || maxB != 300 {
		t.Fatalf("stats = (%d, %d, %d), want (3, 30, 300)", n, maxT, maxB)
	}
	// 300 * 3 / 600 = 1.5
	if got := tr.PartitionSkew(); got != 1.5 {
		t.Fatalf("skew = %v, want 1.5", got)
	}
	// Recursion and prefetch counters ride on the same tracker.
	tr.NoteRecursion(1)
	tr.NoteRecursion(3)
	tr.NoteRecursion(2)
	if tr.SpillRecursions() != 3 || tr.SpillDepth() != 3 {
		t.Fatalf("recursions=%d depth=%d, want 3 and 3", tr.SpillRecursions(), tr.SpillDepth())
	}
	tr.NotePrefetchHit()
	if tr.PrefetchHits() != 1 {
		t.Fatalf("prefetch hits = %d, want 1", tr.PrefetchHits())
	}
}

// SpillDepthLowerBound: ceil-log_fanout(load/cap), clamped to 0 for
// unlimited caps or degenerate fan-outs. The bound justifies the
// picker's up-front recursion_exhausted abort, so the arithmetic is
// pinned exactly.
func TestBudgetSpillDepthLowerBound(t *testing.T) {
	cases := []struct {
		load, cap int64
		fanout    int
		want      int
	}{
		{100, 100, 16, 0},  // already fits
		{100, 0, 16, 0},    // unlimited cap
		{100, 50, 1, 0},    // fanout < 2 cannot split
		{101, 100, 16, 1},  // one level suffices
		{1600, 100, 16, 1}, // exactly one level (1600/16 = 100)
		{1601, 100, 16, 2}, // ceil division: 101 > 100
		{4096, 1, 2, 12},   // log2(4096)
	}
	for _, c := range cases {
		if got := SpillDepthLowerBound(c.load, c.cap, c.fanout); got != c.want {
			t.Fatalf("SpillDepthLowerBound(%d, %d, %d) = %d, want %d",
				c.load, c.cap, c.fanout, got, c.want)
		}
	}
}
