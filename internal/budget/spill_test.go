package budget

import (
	"errors"
	"testing"
)

// Without a spill directory a Flow must charge cumulatively — exactly
// like calling Charge directly — so pre-spill accounting semantics are
// untouched.
func TestBudgetFlowCumulativeWithoutSpill(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 10})
	f := tr.NewFlow()
	for i := 0; i < 5; i++ {
		if err := f.Charge(2, 100); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	if tr.Rows() != 10 {
		t.Fatalf("cumulative rows = %d, want 10", tr.Rows())
	}
	if err := f.Charge(1, 0); err == nil {
		t.Fatal("11th cumulative row accepted")
	}
	f.Release() // must be a no-op in cumulative mode
	if tr.Rows() != 10 {
		t.Fatalf("Release refunded cumulative charges: rows = %d", tr.Rows())
	}
}

// With a spill directory the Flow holds one in-flight batch: each
// charge refunds the previous batch, and Release refunds the last.
func TestBudgetFlowResidentWithSpill(t *testing.T) {
	tr := NewTracker(Budget{MaxRows: 3, SpillDir: t.TempDir()})
	f := tr.NewFlow()
	for i := 0; i < 10; i++ {
		if err := f.Charge(3, 50); err != nil {
			t.Fatalf("batch %d refused: %v", i, err)
		}
		if tr.Rows() != 3 {
			t.Fatalf("batch %d: resident rows = %d, want 3", i, tr.Rows())
		}
	}
	if err := f.Charge(4, 50); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// The failed charge rolled back, and the previous batch was already
	// refunded: nothing is resident.
	if tr.Rows() != 0 {
		t.Fatalf("rows after failed batch = %d, want 0", tr.Rows())
	}
	if err := f.Charge(2, 10); err != nil {
		t.Fatalf("flow unusable after failed batch: %v", err)
	}
	f.Release()
	if tr.Rows() != 0 || tr.Bytes() != 0 {
		t.Fatalf("Release left %d rows / %d bytes", tr.Rows(), tr.Bytes())
	}
}

// A nil Flow (nil tracker) must accept everything.
func TestBudgetFlowNilAcceptsAll(t *testing.T) {
	var tr *Tracker
	f := tr.NewFlow()
	if err := f.Charge(1<<40, 1<<40); err != nil {
		t.Fatalf("nil flow refused: %v", err)
	}
	f.Release()
}

// Refund must return capacity so a spilling operator can keep working
// under a resident cap.
func TestBudgetRefundReturnsCapacity(t *testing.T) {
	tr := NewTracker(Budget{MaxBytes: 100, SpillDir: t.TempDir()})
	if err := tr.Charge(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Charge(1, 1); err == nil {
		t.Fatal("over-cap charge accepted")
	}
	tr.Refund(1, 100)
	if err := tr.Charge(1, 100); err != nil {
		t.Fatalf("charge after refund refused: %v", err)
	}
}

// Charge errors must name the tracker's spill state so the 413
// envelope can tell "disabled" from "enabled".
func TestBudgetErrorCarriesSpillState(t *testing.T) {
	var be *Error
	err := NewTracker(Budget{MaxRows: 1}).Charge(2, 0)
	if !errors.As(err, &be) || be.Spill != SpillDisabled {
		t.Fatalf("no-spill error state = %+v, want %q", be, SpillDisabled)
	}
	err = NewTracker(Budget{MaxRows: 1, SpillDir: t.TempDir()}).Charge(2, 0)
	if !errors.As(err, &be) || be.Spill != SpillEnabled {
		t.Fatalf("spill-enabled error state = %+v, want %q", be, SpillEnabled)
	}
}

// ChargeSpill enforces the disk cap with rollback and tracks the
// monotone written counter only on success.
func TestBudgetChargeSpillDiskCap(t *testing.T) {
	tr := NewTracker(Budget{MaxBytes: 1, SpillDir: t.TempDir(), MaxSpillBytes: 100})
	if err := tr.ChargeSpill(60); err != nil {
		t.Fatal(err)
	}
	err := tr.ChargeSpill(41)
	var be *Error
	if !errors.As(err, &be) || be.Limit != "spill" || be.Spill != SpillDiskCap {
		t.Fatalf("disk cap error = %v, want limit spill, state %q", err, SpillDiskCap)
	}
	if tr.SpillBytes() != 60 {
		t.Fatalf("failed spill charge not rolled back: %d", tr.SpillBytes())
	}
	if tr.SpillWritten() != 60 {
		t.Fatalf("written counter = %d, want 60 (failures excluded)", tr.SpillWritten())
	}
	tr.RefundSpill(60)
	if tr.SpillBytes() != 0 || tr.SpillWritten() != 60 {
		t.Fatalf("refund changed the wrong counter: resident %d, written %d", tr.SpillBytes(), tr.SpillWritten())
	}
}
