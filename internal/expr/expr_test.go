package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"clio/internal/relation"
	"clio/internal/value"
)

var testScheme = relation.NewScheme("C.ID", "C.age", "C.name", "P.ID", "P.salary")

func tup(vals ...string) relation.Tuple {
	vs := make([]value.Value, len(vals))
	for i, s := range vals {
		vs[i] = value.Parse(s)
	}
	return relation.NewTuple(testScheme, vs...)
}

func evalStr(t *testing.T, src string, tp relation.Tuple) value.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e.Eval(tp)
}

func truth(t *testing.T, src string, tp relation.Tuple) value.Tri {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Truth(e, tp)
}

func TestComparisons(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	cases := []struct {
		src  string
		want value.Tri
	}{
		{"C.age < 7", value.True},
		{"C.age < 6", value.False},
		{"C.age <= 6", value.True},
		{"C.age > 5", value.True},
		{"C.age >= 7", value.False},
		{"C.age = 6", value.True},
		{"C.age <> 6", value.False},
		{"C.age != 5", value.True},
		{"C.name = 'Maya'", value.True},
		{"C.ID = 'Maya'", value.False},
		{"C.ID = P.ID", value.Unknown}, // string "002" vs int 101: incomparable
		{"C.age < 7 AND C.name = 'Maya'", value.True},
		{"C.age > 7 OR C.name = 'Maya'", value.True},
		{"NOT C.age < 7", value.False},
		{"NOT (C.age < 7 AND C.name = 'Maya')", value.False},
	}
	for _, c := range cases {
		if got := truth(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	tp := tup("002", "-", "-", "-", "-")
	cases := []struct {
		src  string
		want value.Tri
	}{
		{"C.age < 7", value.Unknown},
		{"C.age = C.age", value.Unknown},
		{"C.age IS NULL", value.True},
		{"C.age IS NOT NULL", value.False},
		{"C.ID IS NOT NULL", value.True},
		// Paper-style null comparisons normalize to IS NULL tests.
		{"C.age = null", value.True},
		{"C.ID <> null", value.True},
		{"C.age <> null", value.False},
		// Unknown propagation through logic.
		{"C.age < 7 AND C.ID = '002'", value.Unknown},
		{"C.age < 7 AND C.ID = 'xxx'", value.False},
		{"C.age < 7 OR C.ID = '002'", value.True},
		{"C.age < 7 OR C.ID = 'xxx'", value.Unknown},
		{"NOT C.age < 7", value.Unknown},
	}
	for _, c := range cases {
		if got := truth(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	cases := []struct {
		src  string
		want value.Value
	}{
		{"C.age + 1", value.Int(7)},
		{"C.age - 10", value.Int(-4)},
		{"C.age * 2", value.Int(12)},
		{"C.age / 2", value.Int(3)},
		{"C.age / 4", value.Float(1.5)},
		{"C.age / 0", value.Null},
		{"-C.age", value.Int(-6)},
		{"C.age + 0.5", value.Float(6.5)},
		{"P.salary + P.salary", value.Int(100000)},
		{"C.name || '!'", value.String("Maya!")},
		{"2 + 3 * 4", value.Int(14)},
		{"(2 + 3) * 4", value.Int(20)},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, tp); !got.Equal(c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
	// Null propagation in arithmetic and concat.
	nullTp := tup("002", "-", "-", "-", "-")
	for _, src := range []string{"C.age + 1", "C.name || 'x'", "C.age * 2"} {
		if got := evalStr(t, src, nullTp); !got.IsNull() {
			t.Errorf("%q on null = %v, want null", src, got)
		}
	}
}

func TestFunctions(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	cases := []struct {
		src  string
		want value.Value
	}{
		{"concat(C.name, C.ID)", value.String("Maya:002")},
		{"concat(C.name, C.age)", value.String("Maya:6")},
		{"upper(C.name)", value.String("MAYA")},
		{"lower(C.name)", value.String("maya")},
		{"coalesce(C.age, 0)", value.Int(6)},
		{"abs(0 - C.age)", value.Int(6)},
		{"abs(0.5 - 1)", value.Float(0.5)},
		{"length(C.name)", value.Int(4)},
		{"nosuchfunc(C.name)", value.Null},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, tp); !got.Equal(c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
	nullTp := tup("-", "-", "-", "-", "-")
	if got := evalStr(t, "concat(C.name, C.ID)", nullTp); !got.IsNull() {
		t.Errorf("concat with null arg = %v, want null", got)
	}
	if got := evalStr(t, "coalesce(C.age, 42)", nullTp); !got.Equal(value.Int(42)) {
		t.Errorf("coalesce fallback = %v, want 42", got)
	}
	if got := evalStr(t, "coalesce(C.age, C.name)", nullTp); !got.IsNull() {
		t.Errorf("coalesce all-null = %v, want null", got)
	}
}

func TestRegisterFunc(t *testing.T) {
	RegisterFunc("testDouble", func(args []value.Value) value.Value {
		if len(args) != 1 {
			return value.Null
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return value.Null
		}
		return value.Float(2 * f)
	})
	if !HasFunc("TESTDOUBLE") {
		t.Error("HasFunc should be case-insensitive")
	}
	tp := tup("002", "6", "Maya", "101", "50000")
	if got := evalStr(t, "testdouble(C.age)", tp); !got.Equal(value.Float(12)) {
		t.Errorf("testdouble = %v", got)
	}
}

func TestLiterals(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	if got := evalStr(t, "'O''Brien'", tp); !got.Equal(value.String("O'Brien")) {
		t.Errorf("escaped string = %v", got)
	}
	if got := evalStr(t, "TRUE", tp); !got.Equal(value.Bool(true)) {
		t.Error("TRUE literal wrong")
	}
	if got := evalStr(t, "false", tp); !got.Equal(value.Bool(false)) {
		t.Error("false literal wrong")
	}
	if got := evalStr(t, "NULL", tp); !got.IsNull() {
		t.Error("NULL literal wrong")
	}
	if got := evalStr(t, "2.5", tp); !got.Equal(value.Float(2.5)) {
		t.Error("float literal wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "C.age <", "(C.age", "C.age AND", "f(a,", "'unterminated",
		"C.age < null", "C.age IS 7", "* 3", "1 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	MustParse("((")
}

func TestColumns(t *testing.T) {
	e := MustParse("C.age < 7 AND concat(C.name, P.ID) = 'x'")
	cols := e.Columns(nil)
	want := map[string]bool{"C.age": true, "C.name": true, "P.ID": true}
	if len(cols) != 3 {
		t.Fatalf("Columns = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String output must re-parse to an expression with identical
	// semantics on sample tuples.
	srcs := []string{
		"C.age < 7 AND C.name = 'Maya'",
		"NOT (C.age >= 7 OR C.ID IS NULL)",
		"concat(C.name, C.ID) || '!'",
		"C.age + 1 * 2 - 3",
		"P.salary IS NOT NULL",
		"(C.age + 1) * 2",
	}
	tuples := []relation.Tuple{
		tup("002", "6", "Maya", "101", "50000"),
		tup("-", "-", "-", "-", "-"),
		tup("001", "9", "Ann", "-", "-"),
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e1.String(), src, err)
		}
		for _, tp := range tuples {
			if !e1.Eval(tp).Equal(e2.Eval(tp)) && !(e1.Eval(tp).IsNull() && e2.Eval(tp).IsNull()) {
				t.Errorf("round-trip changed semantics for %q on %v", src, tp)
			}
		}
	}
}

func TestIsStrong(t *testing.T) {
	s := relation.NewScheme("A.x", "B.y")
	cases := []struct {
		src  string
		want bool
	}{
		{"A.x = B.y", true}, // join predicates are strong
		{"A.x < B.y", true},
		{"A.x = 5", true},
		{"A.x IS NULL", false}, // true on all-null: not strong
		{"TRUE", false},
		{"A.x IS NOT NULL", true},
		{"NOT A.x = 5", true}, // unknown on all-null: strong
		{"A.x = 5 OR A.x IS NULL", false},
	}
	for _, c := range cases {
		if got := IsStrong(MustParse(c.src), s); got != c.want {
			t.Errorf("IsStrong(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMissingColumnEvaluatesNull(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	if got := evalStr(t, "Z.missing = 1", tp); !got.IsNull() {
		t.Errorf("missing column comparison = %v, want null/unknown", got)
	}
}

func TestHelpers(t *testing.T) {
	tp := tup("002", "6", "Maya", "002", "50000")
	eq := Equals("C.ID", "P.ID")
	if Truth(eq, tp) != value.True {
		t.Error("Equals helper wrong")
	}
	if got := And().Eval(tp); !got.Equal(value.Bool(true)) {
		t.Error("empty And should be TRUE")
	}
	conj := And(MustParse("C.age < 7"), MustParse("C.name = 'Maya'"))
	if Truth(conj, tp) != value.True {
		t.Error("And conjunction wrong")
	}
}

// Property: parser round-trips arbitrary integer comparisons and the
// evaluator agrees with Go comparison.
func TestComparisonProperty(t *testing.T) {
	s := relation.NewScheme("R.x")
	f := func(x int16, y int16) bool {
		tp := relation.NewTuple(s, value.Int(int64(x)))
		e := MustParse("R.x < " + value.Int(int64(y)).String())
		return (Truth(e, tp) == value.True) == (int64(x) < int64(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any conjunction of column-column equality predicates is
// strong (false/unknown on the all-null tuple) — the requirement on
// query-graph edge labels.
func TestEqualityConjunctionsStrongProperty(t *testing.T) {
	s := relation.NewScheme("A.a", "A.b", "B.a", "B.b")
	cols := s.Names()
	f := func(pairs [][2]uint8) bool {
		if len(pairs) == 0 {
			return true
		}
		var ps []Expr
		for _, p := range pairs {
			ps = append(ps, Equals(cols[int(p[0])%len(cols)], cols[int(p[1])%len(cols)]))
		}
		return IsStrong(And(ps...), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	e := MustParse("NOT (C.age < 7 AND C.ID IS NULL)")
	s := e.String()
	for _, want := range []string{"NOT", "C.age < 7", "IS NULL", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
}

func TestRenameColumns(t *testing.T) {
	e := MustParse("C.age IN (P.ID, 1) AND C.name LIKE 'M%' AND C.age BETWEEN 1 AND P.salary AND NOT concat(C.name) IS NULL")
	renamed := RenameColumns(e, map[string]string{"C.age": "X.age", "P.ID": "X.ID", "C.name": "X.name", "P.salary": "X.salary"})
	for _, old := range []string{"C.age", "P.ID", "C.name", "P.salary"} {
		for _, c := range renamed.Columns(nil) {
			if c == old {
				t.Errorf("column %s not renamed in %s", old, renamed)
			}
		}
	}
	// RenameQualifiers maps whole relations.
	q := RenameQualifiers(MustParse("Parents.aff = 'x' OR Parents.salary > 1"), map[string]string{"Parents": "Parents2"})
	for _, c := range q.Columns(nil) {
		if c == "Parents.aff" || c == "Parents.salary" {
			t.Errorf("qualifier not renamed: %v", q)
		}
	}
	// No-op rename returns equal semantics.
	same := RenameQualifiers(MustParse("C.age < 7"), map[string]string{"Zzz": "Yyy"})
	if same.String() != "C.age < 7" {
		t.Errorf("no-op rename changed expr: %s", same)
	}
}
