package expr

import (
	"strings"

	"clio/internal/relation"
	"clio/internal/value"
)

// Extended predicate forms used in trimming filters: IN lists, BETWEEN
// ranges, and LIKE patterns. All follow SQL three-valued logic.

// In tests membership of E in a list of expressions. Null E yields
// unknown; a non-matching list containing a null yields unknown
// (SQL's IN semantics).
type In struct {
	E      Expr
	List   []Expr
	Negate bool
}

// Eval implements SQL IN / NOT IN.
func (n In) Eval(t relation.Tuple) value.Value {
	v := n.E.Eval(t)
	if v.IsNull() {
		return value.Null
	}
	sawNull := false
	hit := false
	for _, e := range n.List {
		w := e.Eval(t)
		if w.IsNull() {
			sawNull = true
			continue
		}
		if eq := value.Eq(v, w); eq == value.True {
			hit = true
			break
		}
	}
	var tri value.Tri
	switch {
	case hit:
		tri = value.True
	case sawNull:
		tri = value.Unknown
	default:
		tri = value.False
	}
	if n.Negate {
		tri = tri.Not()
	}
	return triToVal(tri)
}

// Columns appends all referenced columns.
func (n In) Columns(dst []string) []string {
	dst = n.E.Columns(dst)
	for _, e := range n.List {
		dst = e.Columns(dst)
	}
	return dst
}

// String renders E [NOT] IN (list).
func (n In) String() string {
	parts := make([]string, len(n.List))
	for i, e := range n.List {
		parts[i] = e.String()
	}
	not := ""
	if n.Negate {
		not = "NOT "
	}
	return maybeParen(n.E) + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

// Between tests Lo <= E <= Hi with SQL null propagation.
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

// Eval implements SQL BETWEEN.
func (b Between) Eval(t relation.Tuple) value.Value {
	v := b.E.Eval(t)
	lo := b.Lo.Eval(t)
	hi := b.Hi.Eval(t)
	tri := value.Less(v, lo).Not().And(value.Less(hi, v).Not())
	if b.Negate {
		tri = tri.Not()
	}
	return triToVal(tri)
}

// Columns appends all referenced columns.
func (b Between) Columns(dst []string) []string {
	return b.Hi.Columns(b.Lo.Columns(b.E.Columns(dst)))
}

// String renders E [NOT] BETWEEN Lo AND Hi.
func (b Between) String() string {
	not := ""
	if b.Negate {
		not = "NOT "
	}
	return maybeParen(b.E) + " " + not + "BETWEEN " + maybeParen(b.Lo) + " AND " + maybeParen(b.Hi)
}

// Like matches E against a SQL pattern with % (any run) and _ (any
// single byte) wildcards. The pattern is a literal string fixed at
// parse time.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// Eval implements SQL LIKE with 3VL (null input → unknown).
func (l Like) Eval(t relation.Tuple) value.Value {
	v := l.E.Eval(t)
	if v.IsNull() {
		return value.Null
	}
	s := v.String()
	tri := value.TriOf(likeMatch(s, l.Pattern))
	if l.Negate {
		tri = tri.Not()
	}
	return triToVal(tri)
}

// Columns appends the operand's columns.
func (l Like) Columns(dst []string) []string { return l.E.Columns(dst) }

// String renders E [NOT] LIKE 'pattern'.
func (l Like) String() string {
	not := ""
	if l.Negate {
		not = "NOT "
	}
	return maybeParen(l.E) + " " + not + "LIKE " + value.String(l.Pattern).SQL()
}

// likeMatch implements %/_ glob matching with backtracking on %.
func likeMatch(s, pat string) bool {
	var si, pi int
	star := -1
	mark := 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
