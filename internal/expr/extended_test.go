package expr

import (
	"testing"
	"testing/quick"

	"clio/internal/value"
)

func TestIn(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	nullTp := tup("002", "-", "-", "-", "-")
	for _, c := range []struct {
		src  string
		null bool
		want value.Tri
	}{
		{"C.age IN (5, 6, 7)", false, value.True},
		{"C.age IN (1, 2)", false, value.False},
		{"C.age NOT IN (1, 2)", false, value.True},
		{"C.age NOT IN (5, 6)", false, value.False},
		{"C.name IN ('Ann', 'Maya')", false, value.True},
		{"C.age IN (1, NULL)", false, value.Unknown},
		{"C.age IN (6, NULL)", false, value.True},
		{"C.age NOT IN (1, NULL)", false, value.Unknown},
		{"C.age IN (1, 2)", true, value.Unknown},
	} {
		target := tp
		if c.null {
			target = nullTp
		}
		if got := truth(t, c.src, target); got != c.want {
			t.Errorf("%q (null=%v) = %v, want %v", c.src, c.null, got, c.want)
		}
	}
}

func TestBetween(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	nullTp := tup("002", "-", "-", "-", "-")
	cases := []struct {
		src  string
		null bool
		want value.Tri
	}{
		{"C.age BETWEEN 5 AND 7", false, value.True},
		{"C.age BETWEEN 6 AND 6", false, value.True},
		{"C.age BETWEEN 7 AND 9", false, value.False},
		{"C.age NOT BETWEEN 7 AND 9", false, value.True},
		{"C.age BETWEEN 1 AND 3", false, value.False},
		{"C.age BETWEEN 5 AND 7", true, value.Unknown},
		{"C.age BETWEEN NULL AND 7", false, value.Unknown},
	}
	for _, c := range cases {
		target := tp
		if c.null {
			target = nullTp
		}
		if got := truth(t, c.src, target); got != c.want {
			t.Errorf("%q (null=%v) = %v, want %v", c.src, c.null, got, c.want)
		}
	}
	// Half-known BETWEEN can still be definite: 6 BETWEEN 8 AND null
	// is false because 6 < 8 regardless of the upper bound.
	if got := truth(t, "C.age BETWEEN 8 AND NULL", tp); got != value.False {
		t.Errorf("short-circuit BETWEEN = %v, want false", got)
	}
}

func TestLike(t *testing.T) {
	tp := tup("002", "6", "Maya", "101", "50000")
	nullTp := tup("002", "-", "-", "-", "-")
	cases := []struct {
		src  string
		null bool
		want value.Tri
	}{
		{"C.name LIKE 'Maya'", false, value.True},
		{"C.name LIKE 'M%'", false, value.True},
		{"C.name LIKE '%a'", false, value.True},
		{"C.name LIKE '%ay%'", false, value.True},
		{"C.name LIKE 'M_ya'", false, value.True},
		{"C.name LIKE 'm%'", false, value.False},
		{"C.name LIKE '_'", false, value.False},
		{"C.name LIKE '____'", false, value.True},
		{"C.name NOT LIKE 'Z%'", false, value.True},
		{"C.name LIKE '%'", false, value.True},
		{"C.name LIKE 'M%'", true, value.Unknown},
	}
	for _, c := range cases {
		target := tp
		if c.null {
			target = nullTp
		}
		if got := truth(t, c.src, target); got != c.want {
			t.Errorf("%q (null=%v) = %v, want %v", c.src, c.null, got, c.want)
		}
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// Property: a pattern equal to the string always matches; a "%"
	// wrapped substring always matches.
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		// Avoid wildcard bytes inside the generated string.
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] != '%' && s[i] != '_' {
				clean = append(clean, s[i])
			}
		}
		cs := string(clean)
		if !likeMatch(cs, cs) {
			return false
		}
		if len(cs) >= 2 {
			mid := cs[1 : len(cs)-1]
			if !likeMatch(cs, "%"+mid+"%") {
				return false
			}
		}
		return likeMatch(cs, "%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendedParseErrors(t *testing.T) {
	bad := []string{
		"C.age IN 5",
		"C.age IN (5",
		"C.age IN (5;)",
		"C.age BETWEEN 5",
		"C.age BETWEEN 5 OR 7",
		"C.name LIKE C.name",
		"C.name LIKE 7",
		"C.age NOT 5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExtendedStringRoundTrip(t *testing.T) {
	tuples := []struct{ vals []string }{
		{[]string{"002", "6", "Maya", "101", "50000"}},
		{[]string{"-", "-", "-", "-", "-"}},
	}
	for _, src := range []string{
		"C.age IN (5, 6, 7)",
		"C.age NOT IN (1, C.age)",
		"C.age BETWEEN 5 AND 7",
		"C.age NOT BETWEEN 1 AND 3",
		"C.name LIKE 'M%'",
		"C.name NOT LIKE '%z'",
	} {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", e1.String(), err)
		}
		for _, tc := range tuples {
			tp := tup(tc.vals...)
			v1, v2 := e1.Eval(tp), e2.Eval(tp)
			if !v1.Equal(v2) && !(v1.IsNull() && v2.IsNull()) {
				t.Errorf("round-trip changed %q on %v", src, tp)
			}
		}
	}
}

func TestExtendedColumns(t *testing.T) {
	e := MustParse("C.age IN (P.ID, 5) AND C.name LIKE 'M%' AND C.age BETWEEN P.salary AND 9")
	cols := map[string]bool{}
	for _, c := range e.Columns(nil) {
		cols[c] = true
	}
	for _, want := range []string{"C.age", "P.ID", "C.name", "P.salary"} {
		if !cols[want] {
			t.Errorf("missing column %s in %v", want, cols)
		}
	}
}

func TestExtendedStrength(t *testing.T) {
	s := testScheme
	// IN/BETWEEN/LIKE on null input are unknown → strong.
	for _, src := range []string{
		"C.age IN (1, 2)", "C.age BETWEEN 1 AND 2", "C.name LIKE 'x%'",
	} {
		if !IsStrong(MustParse(src), s) {
			t.Errorf("%q should be strong", src)
		}
	}
	// NOT IN over null is still unknown → strong; but IS NULL is not.
	if !IsStrong(MustParse("C.age NOT IN (1)"), s) {
		t.Error("NOT IN should be strong")
	}
}
