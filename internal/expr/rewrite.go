package expr

// RenameColumns returns a copy of e with every column reference
// renamed through the map (absent names are kept). Used when a data
// walk introduces a relation copy and correspondences or filters must
// follow the new occurrence name (Parents.affiliation →
// Parents2.affiliation).
func RenameColumns(e Expr, m map[string]string) Expr {
	switch n := e.(type) {
	case Lit:
		return n
	case Col:
		if nn, ok := m[n.Name]; ok {
			return Col{Name: nn}
		}
		return n
	case Bin:
		return Bin{Op: n.Op, L: RenameColumns(n.L, m), R: RenameColumns(n.R, m)}
	case Not:
		return Not{E: RenameColumns(n.E, m)}
	case IsNull:
		return IsNull{E: RenameColumns(n.E, m), Negate: n.Negate}
	case Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = RenameColumns(a, m)
		}
		return Call{Name: n.Name, Args: args}
	case In:
		list := make([]Expr, len(n.List))
		for i, a := range n.List {
			list[i] = RenameColumns(a, m)
		}
		return In{E: RenameColumns(n.E, m), List: list, Negate: n.Negate}
	case Between:
		return Between{
			E: RenameColumns(n.E, m), Lo: RenameColumns(n.Lo, m),
			Hi: RenameColumns(n.Hi, m), Negate: n.Negate,
		}
	case Like:
		return Like{E: RenameColumns(n.E, m), Pattern: n.Pattern, Negate: n.Negate}
	default:
		return e
	}
}

// RenameQualifiers returns a copy of e with the relation qualifier of
// every column rewritten through the map: {"Parents": "Parents2"}
// renames Parents.x to Parents2.x for every attribute x.
func RenameQualifiers(e Expr, m map[string]string) Expr {
	cols := e.Columns(nil)
	rename := map[string]string{}
	for _, c := range cols {
		for i := 0; i < len(c); i++ {
			if c[i] == '.' {
				if nn, ok := m[c[:i]]; ok {
					rename[c] = nn + c[i:]
				}
				break
			}
		}
	}
	if len(rename) == 0 {
		return e
	}
	return RenameColumns(e, rename)
}
