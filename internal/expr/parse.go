package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"clio/internal/value"
)

// Parse parses a SQL-flavoured expression:
//
//	expr     := or
//	or       := and { OR and }
//	and      := not { AND not }
//	not      := NOT not | cmp
//	cmp      := add [ (=|<>|!=|<|<=|>|>=) add | IS [NOT] NULL ]
//	add      := mul { (+|-|'||') mul }
//	mul      := unary { (*|/) unary }
//	unary    := - unary | primary
//	primary  := literal | column | func(args) | ( expr )
//	literal  := number | 'string' | TRUE | FALSE | NULL
//	column   := ident[.ident]
//
// Comparisons against the NULL literal (x = null, x <> null) are
// accepted because the paper writes filters that way (Example 3.13);
// they are normalized to IS NULL / IS NOT NULL so they behave as the
// paper intends rather than as SQL's always-unknown comparison.
func Parse(s string) (Expr, error) {
	p := &parser{src: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d in %q", p.tok.text, p.tok.off, s)
	}
	return e, nil
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation operators
)

type token struct {
	kind tokKind
	text string
	off  int
}

type parser struct {
	src string
	pos int
	tok token
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("expr: "+format+" (offset %d in %q)", append(args, p.tok.off, p.src)...)
}

func (p *parser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, off: start}
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '\'':
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) {
			if p.src[p.pos] == '\'' {
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				p.tok = token{kind: tokString, text: b.String(), off: start}
				return
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		}
		p.tok = token{kind: tokOp, text: "<unterminated string>", off: start}
	case isIdentStart(c):
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.src[start:p.pos], off: start}
	case c >= '0' && c <= '9':
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		p.tok = token{kind: tokNumber, text: p.src[start:p.pos], off: start}
	default:
		// Multi-char operators first.
		for _, op := range []string{"<>", "!=", "<=", ">=", "||"} {
			if strings.HasPrefix(p.src[p.pos:], op) {
				p.pos += len(op)
				p.tok = token{kind: tokOp, text: op, off: start}
				return
			}
		}
		p.pos++
		p.tok = token{kind: tokOp, text: string(c), off: start}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// keyword reports whether the current token is the given keyword
// (case-insensitive identifier).
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.keyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.tok.kind == tokOp && p.tok.text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: OpOr, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseAnd() (Expr, error) {
	e, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: OpAnd, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	e, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.keyword("IS") {
		p.next()
		neg := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, p.errf("expected NULL after IS")
		}
		return IsNull{E: e, Negate: neg}, nil
	}
	// Postfix predicate forms, with optional infix NOT: IN, BETWEEN,
	// LIKE.
	negate := false
	if p.keyword("NOT") {
		p.next()
		if !p.keyword("IN") && !p.keyword("BETWEEN") && !p.keyword("LIKE") {
			return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
		}
		negate = true
	}
	switch {
	case p.acceptKeyword("IN"):
		if !p.acceptOp("(") {
			return nil, p.errf("expected ( after IN")
		}
		var list []Expr
		for {
			item, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if p.acceptOp(",") {
				continue
			}
			if p.acceptOp(")") {
				break
			}
			return nil, p.errf("expected , or ) in IN list")
		}
		return In{E: e, List: list, Negate: negate}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("AND") {
			return nil, p.errf("expected AND in BETWEEN")
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Between{E: e, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		if p.tok.kind != tokString {
			return nil, p.errf("LIKE requires a string literal pattern")
		}
		pat := p.tok.text
		p.next()
		return Like{E: e, Pattern: pat, Negate: negate}, nil
	}
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			p.next()
			// Normalize "x = null" / "x <> null" to IS NULL tests,
			// matching the paper's filter syntax (Example 3.13).
			if p.keyword("NULL") {
				p.next()
				switch op {
				case OpEq:
					return IsNull{E: e}, nil
				case OpNe:
					return IsNull{E: e, Negate: true}, nil
				default:
					return nil, p.errf("cannot order-compare against NULL")
				}
			}
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Bin{Op: op, L: e, R: r}, nil
		}
	}
	return e, nil
}

func (p *parser) parseAdd() (Expr, error) {
	e, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.tok.kind == tokOp && p.tok.text == "+":
			op = OpAdd
		case p.tok.kind == tokOp && p.tok.text == "-":
			op = OpSub
		case p.tok.kind == tokOp && p.tok.text == "||":
			op = OpConcat
		default:
			return e, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: op, L: e, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := OpMul
		if p.tok.text == "/" {
			op = OpDiv
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = Bin{Op: op, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Bin{Op: OpSub, L: Lit{value.Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokNumber:
		text := p.tok.text
		p.next()
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", text)
			}
			return Lit{value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", text)
		}
		return Lit{value.Int(i)}, nil
	case tokString:
		text := p.tok.text
		p.next()
		return Lit{value.String(text)}, nil
	case tokIdent:
		text := p.tok.text
		switch {
		case strings.EqualFold(text, "TRUE"):
			p.next()
			return Lit{value.Bool(true)}, nil
		case strings.EqualFold(text, "FALSE"):
			p.next()
			return Lit{value.Bool(false)}, nil
		case strings.EqualFold(text, "NULL"):
			p.next()
			return Lit{value.Null}, nil
		}
		p.next()
		if p.acceptOp("(") {
			var args []Expr
			if !p.acceptOp(")") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptOp(",") {
						continue
					}
					if p.acceptOp(")") {
						break
					}
					return nil, p.errf("expected , or ) in call to %s", text)
				}
			}
			return Call{Name: text, Args: args}, nil
		}
		return Col{Name: text}, nil
	case tokOp:
		if p.acceptOp("(") {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.acceptOp(")") {
				return nil, p.errf("missing )")
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", p.tok.text)
}
