// Package expr implements the expression language used for selection
// predicates, join predicates, and value correspondences: a small
// SQL-flavoured expression AST with a parser and a three-valued-logic
// evaluator over tuples.
//
// Predicates evaluate to true/false/unknown (value.Tri); filters keep
// a tuple only when the predicate is true, matching SQL semantics. The
// paper's notion of a *strong* predicate (false on the all-null tuple)
// is decidable here by evaluation: see IsStrong.
package expr

import (
	"fmt"
	"math"
	"strings"

	"clio/internal/relation"
	"clio/internal/value"
)

// Expr is a typed expression evaluable against a tuple.
type Expr interface {
	// Eval computes the expression's value on t. Scalar expressions
	// return data values; predicate expressions return Bool or Null
	// (null encodes unknown).
	Eval(t relation.Tuple) value.Value
	// Columns appends the qualified column names the expression reads.
	Columns(dst []string) []string
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Truth evaluates e as a predicate under 3VL: Bool(true) → True,
// Bool(false) → False, anything else (including null and non-boolean
// values) → Unknown.
func Truth(e Expr, t relation.Tuple) value.Tri {
	v := e.Eval(t)
	if v.Kind() == value.KindBool {
		return value.TriOf(v.BoolVal())
	}
	return value.Unknown
}

// IsStrong reports whether predicate e is strong over the scheme s:
// it does not evaluate to true on the all-null tuple (paper §3,
// Preliminaries; strong predicates are required on join edges).
func IsStrong(e Expr, s *relation.Scheme) bool {
	return Truth(e, relation.AllNull(s)) != value.True
}

// Lit is a literal value.
type Lit struct{ Val value.Value }

// Eval returns the literal value.
func (l Lit) Eval(relation.Tuple) value.Value { return l.Val }

// Columns returns dst unchanged.
func (l Lit) Columns(dst []string) []string { return dst }

// String renders the literal as SQL.
func (l Lit) String() string { return l.Val.SQL() }

// Col references a column by qualified name ("Children.ID").
type Col struct{ Name string }

// Eval returns the column's value in t; a column absent from the
// tuple's scheme evaluates to null (this arises when a predicate over
// a wide scheme is probed against a narrower tuple).
func (c Col) Eval(t relation.Tuple) value.Value {
	v, _ := t.Lookup(c.Name)
	return v
}

// Columns appends the column name.
func (c Col) Columns(dst []string) []string { return append(dst, c.Name) }

// String returns the qualified name.
func (c Col) String() string { return c.Name }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparisons yield Bool/Null; arithmetic yields
// numbers/Null; Concat yields strings/Null.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpConcat: "||",
}

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// triToVal encodes a Tri as a Bool value, with Unknown as null.
func triToVal(t value.Tri) value.Value {
	switch t {
	case value.True:
		return value.Bool(true)
	case value.False:
		return value.Bool(false)
	default:
		return value.Null
	}
}

// valToTri decodes a Bool value into Tri, with null/non-bool as
// Unknown.
func valToTri(v value.Value) value.Tri {
	if v.Kind() == value.KindBool {
		return value.TriOf(v.BoolVal())
	}
	return value.Unknown
}

// Eval evaluates the binary expression with SQL null propagation.
func (b Bin) Eval(t relation.Tuple) value.Value {
	switch b.Op {
	case OpAnd:
		return triToVal(valToTri(b.L.Eval(t)).And(valToTri(b.R.Eval(t))))
	case OpOr:
		return triToVal(valToTri(b.L.Eval(t)).Or(valToTri(b.R.Eval(t))))
	}
	l, r := b.L.Eval(t), b.R.Eval(t)
	switch b.Op {
	case OpEq:
		return triToVal(value.Eq(l, r))
	case OpNe:
		return triToVal(value.Eq(l, r).Not())
	case OpLt:
		return triToVal(value.Less(l, r))
	case OpGt:
		return triToVal(value.Less(r, l))
	case OpLe:
		return triToVal(value.Less(r, l).Not())
	case OpGe:
		return triToVal(value.Less(l, r).Not())
	case OpConcat:
		if l.IsNull() || r.IsNull() {
			return value.Null
		}
		return value.String(asString(l) + asString(r))
	}
	// Arithmetic.
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return value.Null
	}
	bothInt := l.Kind() == value.KindInt && r.Kind() == value.KindInt
	switch b.Op {
	case OpAdd:
		if bothInt {
			return value.Int(l.IntVal() + r.IntVal())
		}
		return value.Float(lf + rf)
	case OpSub:
		if bothInt {
			return value.Int(l.IntVal() - r.IntVal())
		}
		return value.Float(lf - rf)
	case OpMul:
		if bothInt {
			return value.Int(l.IntVal() * r.IntVal())
		}
		return value.Float(lf * rf)
	case OpDiv:
		if rf == 0 {
			return value.Null
		}
		if bothInt && l.IntVal()%r.IntVal() == 0 {
			return value.Int(l.IntVal() / r.IntVal())
		}
		return value.Float(lf / rf)
	}
	return value.Null
}

// Columns appends both operands' columns.
func (b Bin) Columns(dst []string) []string { return b.R.Columns(b.L.Columns(dst)) }

// String renders the expression with parentheses around compound
// operands.
func (b Bin) String() string {
	return maybeParen(b.L) + " " + binOpNames[b.Op] + " " + maybeParen(b.R)
}

func maybeParen(e Expr) string {
	switch e.(type) {
	case Bin, Not:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

// Not is logical negation.
type Not struct{ E Expr }

// Eval negates under 3VL.
func (n Not) Eval(t relation.Tuple) value.Value {
	return triToVal(valToTri(n.E.Eval(t)).Not())
}

// Columns appends the operand's columns.
func (n Not) Columns(dst []string) []string { return n.E.Columns(dst) }

// String renders NOT (...).
func (n Not) String() string { return "NOT " + maybeParen(n.E) }

// IsNull tests nullness; Negate flips it to IS NOT NULL. Unlike
// comparisons, IS NULL is never unknown.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval returns a definite boolean.
func (i IsNull) Eval(t relation.Tuple) value.Value {
	isNull := i.E.Eval(t).IsNull()
	return value.Bool(isNull != i.Negate)
}

// Columns appends the operand's columns.
func (i IsNull) Columns(dst []string) []string { return i.E.Columns(dst) }

// String renders IS [NOT] NULL.
func (i IsNull) String() string {
	if i.Negate {
		return maybeParen(i.E) + " IS NOT NULL"
	}
	return maybeParen(i.E) + " IS NULL"
}

// Call invokes a registered scalar function.
type Call struct {
	Name string
	Args []Expr
}

// Eval applies the function; unregistered functions evaluate to null.
func (c Call) Eval(t relation.Tuple) value.Value {
	f, ok := funcRegistry[strings.ToLower(c.Name)]
	if !ok {
		return value.Null
	}
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Eval(t)
	}
	return f(args)
}

// Columns appends all argument columns.
func (c Call) Columns(dst []string) []string {
	for _, a := range c.Args {
		dst = a.Columns(dst)
	}
	return dst
}

// String renders name(arg, ...).
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Func is a scalar function over values.
type Func func(args []value.Value) value.Value

var funcRegistry = map[string]Func{}

// RegisterFunc adds a scalar function to the registry (name is
// case-insensitive). Re-registration replaces the previous binding.
func RegisterFunc(name string, f Func) {
	funcRegistry[strings.ToLower(name)] = f
}

// HasFunc reports whether a function is registered.
func HasFunc(name string) bool {
	_, ok := funcRegistry[strings.ToLower(name)]
	return ok
}

func asString(v value.Value) string {
	if v.Kind() == value.KindString {
		return v.Str()
	}
	return v.String()
}

func init() {
	// The built-in scalar functions. concat matches Example 3.15:
	// concat(a, b) = a || ":" || b.
	RegisterFunc("concat", func(args []value.Value) value.Value {
		for _, a := range args {
			if a.IsNull() {
				return value.Null
			}
		}
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = asString(a)
		}
		return value.String(strings.Join(parts, ":"))
	})
	RegisterFunc("coalesce", func(args []value.Value) value.Value {
		for _, a := range args {
			if !a.IsNull() {
				return a
			}
		}
		return value.Null
	})
	RegisterFunc("upper", func(args []value.Value) value.Value {
		if len(args) != 1 || args[0].IsNull() {
			return value.Null
		}
		return value.String(strings.ToUpper(asString(args[0])))
	})
	RegisterFunc("lower", func(args []value.Value) value.Value {
		if len(args) != 1 || args[0].IsNull() {
			return value.Null
		}
		return value.String(strings.ToLower(asString(args[0])))
	})
	RegisterFunc("abs", func(args []value.Value) value.Value {
		if len(args) != 1 {
			return value.Null
		}
		switch args[0].Kind() {
		case value.KindInt:
			v := args[0].IntVal()
			if v < 0 {
				v = -v
			}
			return value.Int(v)
		case value.KindFloat:
			return value.Float(math.Abs(args[0].FloatVal()))
		default:
			return value.Null
		}
	})
	RegisterFunc("length", func(args []value.Value) value.Value {
		if len(args) != 1 || args[0].IsNull() {
			return value.Null
		}
		return value.Int(int64(len(asString(args[0]))))
	})
}

// Equals builds the equality predicate l = r over two columns; the
// canonical join-edge predicate form.
func Equals(lcol, rcol string) Expr {
	return Bin{Op: OpEq, L: Col{lcol}, R: Col{rcol}}
}

// And conjoins predicates; And() with no arguments is TRUE.
func And(ps ...Expr) Expr {
	if len(ps) == 0 {
		return Lit{value.Bool(true)}
	}
	e := ps[0]
	for _, p := range ps[1:] {
		e = Bin{Op: OpAnd, L: e, R: p}
	}
	return e
}

// MustParse parses s and panics on error; for statically-known
// expressions in fixtures and tests.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(fmt.Sprintf("expr: MustParse(%q): %v", s, err))
	}
	return e
}
