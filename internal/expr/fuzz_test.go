package expr

import (
	"testing"

	"clio/internal/relation"
	"clio/internal/value"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts round-trips: the String rendering re-parses, and both
// expressions evaluate identically on sample tuples.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"C.age < 7",
		"a.b = c.d AND NOT x.y IS NULL",
		"concat(a.b, 'x') || 'y'",
		"a.b IN (1, 2, NULL)",
		"a.b BETWEEN 1 AND 9 OR a.b LIKE 'x%'",
		"1 + 2 * 3 - -4 / 5",
		"'it''s' <> NULL",
		"((", "a..b", "IN (", "%", "NOT NOT NOT a.b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	s1 := relation.NewScheme("a.b", "c.d", "x.y", "C.age")
	tuples := []relation.Tuple{
		relation.NewTuple(s1, value.Int(1), value.String("q"), value.Null, value.Int(6)),
		relation.AllNull(s1),
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		e2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", src, rendered, err)
		}
		for _, tp := range tuples {
			v1, v2 := e.Eval(tp), e2.Eval(tp)
			if !v1.Equal(v2) && !(v1.IsNull() && v2.IsNull()) {
				t.Fatalf("round-trip semantics changed for %q: %v vs %v", src, v1, v2)
			}
		}
	})
}

// FuzzLikeMatch checks the wildcard matcher never panics or loops.
func FuzzLikeMatch(f *testing.F) {
	f.Add("Maya", "M%")
	f.Add("", "%")
	f.Add("aaa", "a_a")
	f.Add("x", "%%%_")
	f.Fuzz(func(t *testing.T, s, pat string) {
		if len(s) > 200 || len(pat) > 200 {
			return
		}
		likeMatch(s, pat)
	})
}
