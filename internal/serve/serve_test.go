package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clio/internal/fd"
	"clio/internal/obs"
)

// newTestServer builds a server and an httptest front end around it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	prevCap := fd.CacheCapacity()
	s := New(cfg)
	fd.InvalidateCache()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		fd.SetCacheCapacity(prevCap)
		fd.InvalidateCache()
	})
	return s, ts
}

// call issues a JSON request and decodes the JSON response.
func call(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: bad JSON response: %v", method, path, err)
	}
	return resp.StatusCode, out
}

// mustCall fails the test unless the endpoint answers 200.
func mustCall(t *testing.T, ts *httptest.Server, method, path string, body any) map[string]any {
	t.Helper()
	status, out := call(t, ts, method, path, body)
	if status != http.StatusOK {
		t.Fatalf("%s %s: status %d, body %v", method, path, status, out)
	}
	return out
}

func newPaperSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	out := mustCall(t, ts, "POST", "/api/sessions", map[string]any{"source": "paper", "name": "kids"})
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("create session: no id in %v", out)
	}
	return id
}

// The basic session lifecycle round-trips: create, correspond, walk,
// illustrate, view, accept, undo, delete.
func TestSessionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newPaperSession(t, ts)

	out := mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	if n := len(out["workspaces"].([]any)); n != 1 {
		t.Fatalf("after corr: %d workspaces, want 1", n)
	}

	out = mustCall(t, ts, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "Children", "to": "PhoneDir"})
	if n := len(out["workspaces"].([]any)); n == 0 {
		t.Fatal("walk produced no workspaces")
	}

	out = mustCall(t, ts, "GET", "/api/sessions/"+id+"/illustration", nil)
	if txt, _ := out["text"].(string); !strings.Contains(txt, "Children") {
		t.Errorf("illustration text looks wrong: %q", txt)
	}

	out = mustCall(t, ts, "GET", "/api/sessions/"+id+"/view", nil)
	if rows, _ := out["rows"].([]any); len(rows) == 0 {
		t.Error("target view has no rows")
	}

	mustCall(t, ts, "POST", "/api/sessions/"+id+"/accept", nil)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/undo", nil)

	out = mustCall(t, ts, "GET", "/api/sessions", nil)
	if n := len(out["sessions"].([]any)); n != 1 {
		t.Fatalf("%d sessions listed, want 1", n)
	}
	mustCall(t, ts, "DELETE", "/api/sessions/"+id, nil)
	if status, _ := call(t, ts, "GET", "/api/sessions/"+id+"/workspaces", nil); status != http.StatusNotFound {
		t.Errorf("deleted session still answers: status %d", status)
	}
}

// Unknown sessions, bad bodies, and bad operator arguments map to
// client-error statuses, not 500s.
func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, _ := call(t, ts, "GET", "/api/sessions/nope/workspaces", nil); status != http.StatusNotFound {
		t.Errorf("missing session: status %d, want 404", status)
	}
	id := newPaperSession(t, ts)
	if status, _ := call(t, ts, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "", "to": ""}); status != http.StatusBadRequest {
		t.Errorf("empty walk: status %d, want 400", status)
	}
	if status, _ := call(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "not a correspondence"}); status != http.StatusBadRequest {
		t.Errorf("bad corr: status %d, want 400", status)
	}
}

// Eight-plus concurrent sessions mixing walks, chases, illustrations,
// examples, and views against one server must be race-free (run under
// -race) and keep every session coherent. Two extra goroutines hammer
// a shared session to exercise the per-session lock.
func TestConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 64, CacheCapacity: 32})

	const sessions = 8
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = newPaperSession(t, ts)
	}
	shared := newPaperSession(t, ts)

	var wg sync.WaitGroup
	errc := make(chan error, 2*(sessions+2))
	drive := func(id string, seed int) {
		defer wg.Done()
		// Seed the session's graph so walks and chases have a start.
		if status, out := call(t, ts, "POST", "/api/sessions/"+id+"/corr",
			map[string]any{"spec": "Children.ID -> Kids.ID"}); status >= 500 {
			errc <- fmt.Errorf("%s: seed corr status %d body %v", id, status, out)
			return
		}
		for i := 0; i < 6; i++ {
			var status int
			var out map[string]any
			switch (seed + i) % 5 {
			case 0:
				status, out = call(t, ts, "POST", "/api/sessions/"+id+"/walk",
					map[string]any{"from": "Children", "to": "PhoneDir"})
			case 1:
				status, out = call(t, ts, "POST", "/api/sessions/"+id+"/chase",
					map[string]any{"column": "Children.ID", "value": "002"})
			case 2:
				status, out = call(t, ts, "GET", "/api/sessions/"+id+"/illustration", nil)
			case 3:
				status, out = call(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
			case 4:
				status, out = call(t, ts, "GET", "/api/sessions/"+id+"/view", nil)
			}
			// Operator preconditions can legitimately fail (422) when
			// interleaved — e.g. a chase whose value occurs nowhere new
			// after another goroutine rewrote the graph. Only server
			// errors and throttling are bugs here.
			if status >= 500 || status == http.StatusTooManyRequests {
				errc <- fmt.Errorf("%s: status %d body %v", id, status, out)
				return
			}
		}
	}
	for i, id := range ids {
		wg.Add(1)
		go drive(id, i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go drive(shared, i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every session still answers coherently.
	for _, id := range append(ids, shared) {
		out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/workspaces", nil)
		if _, ok := out["active"]; !ok {
			t.Errorf("session %s lost its active workspace", id)
		}
	}
}

// Repeated example recomputation over an unchanged instance must be
// served from the D(G) cache — fd.compute.calls stays flat — and a
// source-instance mutation (rows endpoint) must invalidate it.
func TestExamplesHitDGCacheUntilMutation(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	_, ts := newTestServer(t, Config{CacheCapacity: 32})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "Children", "to": "PhoneDir"})

	computeCalls := obs.GetCounter("fd.compute.calls")
	first := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	warm := computeCalls.Value()
	second := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	if got := computeCalls.Value(); got != warm {
		t.Errorf("repeated examples recomputed D(G): fd.compute.calls %d -> %d", warm, got)
	}
	if first["associations"] != second["associations"] {
		t.Errorf("cached examples differ: %v vs %v", first["associations"], second["associations"])
	}

	// Mutate a base relation: the rows op delta-maintains the active
	// workspace's D(G) and re-memoizes it under the new content
	// fingerprint, so the next examples call may legally hit the cache
	// — but never with stale content. The result must see the new
	// tuple and match a forced cold recomputation byte-for-byte.
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"012", "Nina", "8", "100", "101", "d3"}})
	third := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	if third["associations"] == first["associations"] {
		t.Errorf("post-mutation association count unchanged (%v)", third["associations"])
	}
	fd.InvalidateCache()
	truth := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	if third["associations"] != truth["associations"] || third["text"] != truth["text"] {
		t.Errorf("post-mutation examples differ from cold recomputation: %v assoc vs %v",
			third["associations"], truth["associations"])
	}
}

// Mutating a session's source relation while D(G) computations are in
// flight must never leave a stale cache entry serving: once the dust
// settles, the example set equals a forced recomputation with the
// cache cleared. Run under -race.
func TestExamplesNeverStaleUnderConcurrentMutation(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCapacity: 32, MaxInFlight: 32})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})

	var wg sync.WaitGroup
	errc := make(chan error, 2)
	wg.Add(2)
	go func() { // writer: keeps mutating the base relation
		defer wg.Done()
		for i := 0; i < 15; i++ {
			id3 := fmt.Sprintf("9%02d", i)
			if status, out := call(t, ts, "POST", "/api/sessions/"+id+"/rows",
				map[string]any{"relation": "Children",
					"values": []string{id3, "kid" + id3, "7", "100", "101", "d1"}}); status != http.StatusOK {
				errc <- fmt.Errorf("rows: status %d body %v", status, out)
				return
			}
		}
	}()
	go func() { // reader: recomputes D(G)-backed examples throughout
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if status, out := call(t, ts, "GET", "/api/sessions/"+id+"/examples", nil); status >= 500 {
				errc <- fmt.Errorf("examples: status %d body %v", status, out)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	final := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	fd.InvalidateCache() // force the ground-truth recomputation
	truth := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	if final["associations"] != truth["associations"] || final["text"] != truth["text"] {
		t.Errorf("stale cached examples: cached %v assoc, recomputed %v",
			final["associations"], truth["associations"])
	}
}

// When the admission gate is full the server answers 429 immediately
// instead of queueing, and recovers once slots free up.
func TestAdmissionGateBackpressure(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	// Fill both slots directly so the result is deterministic.
	s.gate <- struct{}{}
	s.gate <- struct{}{}
	status, body := call(t, ts, "GET", "/api/sessions", nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d body %v, want 429", status, body)
	}
	if got := cThrottled.Value(); got == 0 {
		t.Error("serve.throttled counter not incremented")
	}
	<-s.gate
	<-s.gate
	if status, _ := call(t, ts, "GET", "/api/sessions", nil); status != http.StatusOK {
		t.Errorf("drained server: status %d, want 200", status)
	}
}

// An expired per-request deadline must cancel the operator pipeline
// (the context reaches fd.Compute) and surface as 504.
func TestRequestTimeoutCancelsCompute(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	// Session creation may itself time out under the nanosecond budget;
	// build it on a generous server sharing no state, then re-point.
	// Simpler: create the session through the same server but tolerate
	// retries — creation does not call fd.Compute.
	status, out := call(t, ts, "POST", "/api/sessions", map[string]any{"source": "paper"})
	if status != http.StatusOK {
		t.Skipf("session creation hit the artificial deadline: %v", out)
	}
	id := out["id"].(string)
	if status, _ := call(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"}); status != http.StatusGatewayTimeout {
		t.Errorf("deadline-bound corr: status %d, want 504", status)
	}
}

// Start/Shutdown round-trip: the server binds a real port, serves,
// and drains cleanly.
func TestStartAndGracefulShutdown(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
