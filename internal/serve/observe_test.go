package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clio/internal/fd"
	"clio/internal/obs"
)

// lockedBuffer is an io.Writer safe for concurrent handler writes and
// test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// get issues a bare GET and returns the response (caller closes Body),
// for tests that need headers, not just the decoded JSON.
func get(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitFor polls cond for up to a second — access-log lines and trace
// export happen in handler defers, which may complete after the client
// has already read the response.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMetricsEndpointPrometheusFormat scrapes /metrics after a real
// request and asserts the exposition contains the serve request
// counter in Prometheus text format.
func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCall(t, ts, "GET", "/api/stats", nil)

	resp := get(t, ts, "/metrics")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	out := body.String()
	for _, want := range []string{
		"# TYPE clio_serve_requests_total counter",
		"clio_serve_requests_total ",
		"# TYPE clio_serve_request_ns summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestTraceIDSharedByHeaderLogAndRetainedTree is the end-to-end trace
// correlation contract: one request yields one trace ID, visible in
// the X-Clio-Trace response header, the access-log line, the retained
// span tree (including the fd.Compute spans underneath), and the
// session op log.
func TestTraceIDSharedByHeaderLogAndRetainedTree(t *testing.T) {
	logBuf := &lockedBuffer{}
	s, ts := newTestServer(t, Config{AccessLog: logBuf})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})

	// The walk both mutates the mapping and is an op-logged operator:
	// its trace ID must land in the session op log.
	resp := get(t, ts, "/api/sessions/"+id+"/workspaces")
	resp.Body.Close()
	walkResp, err := ts.Client().Post(ts.URL+"/api/sessions/"+id+"/walk", "application/json",
		strings.NewReader(`{"from":"Children","to":"PhoneDir"}`))
	if err != nil {
		t.Fatal(err)
	}
	walkResp.Body.Close()
	walkTrace := walkResp.Header.Get("X-Clio-Trace")
	if walkTrace == "" {
		t.Fatal("walk response has no X-Clio-Trace header")
	}

	// The examples endpoint drives fd.Compute, so its retained tree
	// must contain engine spans. The walk above warmed the D(G) memo;
	// drop it so the examples request actually computes.
	fd.InvalidateCache()
	exResp := get(t, ts, "/api/sessions/"+id+"/examples")
	exResp.Body.Close()
	trace := exResp.Header.Get("X-Clio-Trace")
	if trace == "" {
		t.Fatal("examples response has no X-Clio-Trace header")
	}
	if trace == walkTrace {
		t.Fatal("two requests shared one trace ID")
	}

	// Access log: the examples line carries the same trace ID.
	var logLine map[string]any
	waitFor(t, "examples access-log line", func() bool {
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if line == "" {
				continue
			}
			var m map[string]any
			if json.Unmarshal([]byte(line), &m) != nil {
				continue
			}
			if m["endpoint"] == "examples" && m["trace"] == trace {
				logLine = m
				return true
			}
		}
		return false
	})
	if logLine["session"] != id {
		t.Errorf("access log session = %v, want %s", logLine["session"], id)
	}
	if logLine["status"] != float64(http.StatusOK) {
		t.Errorf("access log status = %v, want 200", logLine["status"])
	}
	if logLine["dg_cache"] != "miss" {
		t.Errorf("access log dg_cache = %v, want miss on first examples", logLine["dg_cache"])
	}

	// Retained span tree: resolvable by the same ID, rooted at the
	// endpoint span, stamped with the ID, and containing the engine's
	// fd spans.
	var tr *obs.Trace
	waitFor(t, "retained trace", func() bool {
		tr = s.traces.Get(trace)
		return tr != nil
	})
	if tr.Root.Name != "serve.examples" {
		t.Errorf("retained root span = %s, want serve.examples", tr.Root.Name)
	}
	if got := obs.AttrMap(tr.Root)["trace_id"]; got != trace {
		t.Errorf("root trace_id attr = %v, want %s", got, trace)
	}
	names := obs.SpanNames(tr.Root)
	var sawCompute bool
	for _, n := range names {
		if strings.Contains(n, "/fd.compute") {
			sawCompute = true
		}
	}
	if !sawCompute {
		t.Errorf("retained tree has no fd.compute span: %v", names)
	}

	// Session op log: the walk record is stamped with the walk
	// request's trace ID.
	out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/status", nil)
	oplog, _ := out["oplog"].(string)
	if !strings.Contains(oplog, "trace="+walkTrace) {
		t.Errorf("op log does not carry the walk trace %s:\n%s", walkTrace, oplog)
	}

	// A second examples call is a D(G) cache hit, and says so.
	exResp2 := get(t, ts, "/api/sessions/"+id+"/examples")
	exResp2.Body.Close()
	trace2 := exResp2.Header.Get("X-Clio-Trace")
	waitFor(t, "cached examples access-log line", func() bool {
		return strings.Contains(logBuf.String(), trace2)
	})
	if !strings.Contains(logBuf.String(), `"dg_cache":"hit"`) {
		t.Error("second examples call not logged as dg_cache hit")
	}
}

// TestHealthzReportsDraining: healthz is 200 while serving and 503
// with a draining body once shutdown begins.
func TestHealthzReportsDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, out := call(t, ts, "GET", "/healthz", nil); status != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthy healthz = %d %v", status, out)
	}
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	status, out := call(t, ts, "GET", "/healthz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", status)
	}
	if out["status"] != "draining" {
		t.Errorf("draining healthz body = %v", out)
	}
}

// sumPlanRows walks the explain plan JSON and sums the operator rows
// attributes.
func sumPlanRows(node map[string]any) float64 {
	var sum float64
	if name, _ := node["name"].(string); strings.HasPrefix(name, "op.") {
		if attrs, ok := node["attrs"].(map[string]any); ok {
			if v, ok := attrs["rows"].(float64); ok {
				sum += v
			}
		}
	}
	if children, ok := node["children"].([]any); ok {
		for _, c := range children {
			if m, ok := c.(map[string]any); ok {
				sum += sumPlanRows(m)
			}
		}
	}
	return sum
}

// TestExplainEndpointFigure8 drives the paper scenario and checks the
// explain payload: picker choice, cache disposition, and an operator
// tree whose per-operator rows are consistent with the executed D(G).
func TestExplainEndpointFigure8(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "Children", "to": "PhoneDir"})

	// The executed row counts to match against: the examples endpoint
	// runs the same fd.Compute plan and reports D(G)'s size.
	ex := mustCall(t, ts, "GET", "/api/sessions/"+id+"/examples", nil)
	wantTuples, _ := ex["associations"].(float64)
	if wantTuples == 0 {
		t.Fatal("examples reported no associations")
	}

	out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/explain", nil)
	if out["algo"] != "outer_join" {
		t.Errorf("algo = %v, want outer_join (tree-shaped walk graph)", out["algo"])
	}
	if out["cache"] != "hit" {
		t.Errorf("cache = %v, want hit (examples warmed it)", out["cache"])
	}
	if out["is_tree"] != true {
		t.Errorf("is_tree = %v, want true", out["is_tree"])
	}
	if got, _ := out["tuples"].(float64); got != wantTuples {
		t.Errorf("explain tuples = %v, want %v (executed D(G) size)", got, wantTuples)
	}
	plan, ok := out["plan"].(map[string]any)
	if !ok {
		t.Fatalf("no plan tree in explain payload: %v", out)
	}
	if plan["name"] != "fd.compute" {
		t.Errorf("plan root = %v, want fd.compute", plan["name"])
	}
	if sum := sumPlanRows(plan); sum == 0 {
		t.Error("plan operator rows sum to zero — per-operator attrs missing")
	}
	// The outer-join span's tuples attr must equal the executed D(G)
	// row count the engine reported.
	var ojTuples float64
	var walk func(map[string]any)
	walk = func(n map[string]any) {
		if n["name"] == "fd.outer_join" {
			if attrs, ok := n["attrs"].(map[string]any); ok {
				ojTuples, _ = attrs["tuples"].(float64)
			}
		}
		if children, ok := n["children"].([]any); ok {
			for _, c := range children {
				if m, ok := c.(map[string]any); ok {
					walk(m)
				}
			}
		}
	}
	walk(plan)
	if ojTuples != wantTuples {
		t.Errorf("outer_join tuples attr = %v, want %v", ojTuples, wantTuples)
	}
}

// TestStatuszAndTraceIndex covers the operational summary and the
// trace browser index/detail pair.
func TestStatuszAndTraceIndex(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceBufferSize: 4})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})

	out := mustCall(t, ts, "GET", "/statusz", nil)
	if out["draining"] != false {
		t.Errorf("statusz draining = %v, want false", out["draining"])
	}
	if n, _ := out["sessions"].(float64); n != 1 {
		t.Errorf("statusz sessions = %v, want 1", n)
	}
	if _, ok := out["cache"].(map[string]any); !ok {
		t.Errorf("statusz has no cache block: %v", out)
	}
	if _, ok := out["journal_degraded"]; !ok {
		t.Errorf("statusz has no journal_degraded gauge: %v", out)
	}

	waitFor(t, "retained traces", func() bool { return s.traces.Len() > 0 })
	idx := mustCall(t, ts, "GET", "/debug/traces", nil)
	recent, _ := idx["recent"].([]any)
	if len(recent) == 0 {
		t.Fatalf("trace index empty: %v", idx)
	}
	first, _ := recent[0].(map[string]any)
	tid, _ := first["id"].(string)
	if tid == "" {
		t.Fatalf("trace summary has no id: %v", first)
	}
	detail := mustCall(t, ts, "GET", "/debug/traces/"+tid, nil)
	root, ok := detail["root"].(map[string]any)
	if !ok {
		t.Fatalf("trace detail has no root tree: %v", detail)
	}
	if name, _ := root["name"].(string); !strings.HasPrefix(name, "serve.") {
		t.Errorf("trace root %q is not an endpoint span", name)
	}
	if status, out := call(t, ts, "GET", "/debug/traces/nope", nil); status != http.StatusNotFound {
		t.Errorf("missing trace answered %d %v, want 404", status, out)
	}
}

// TestReplayOpsGetSyntheticTraceIDs restarts a journaled server and
// asserts the replayed ops are stamped with a synthetic replay trace
// ID — distinct from any live request ID and present without any
// request context (replay runs on a bare background ctx and must not
// panic).
func TestReplayOpsGetSyntheticTraceIDs(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JournalDir: dir})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	walkResp, err := ts.Client().Post(ts.URL+"/api/sessions/"+id+"/walk", "application/json",
		strings.NewReader(`{"from":"Children","to":"PhoneDir"}`))
	if err != nil {
		t.Fatal(err)
	}
	walkResp.Body.Close()
	liveTrace := walkResp.Header.Get("X-Clio-Trace")

	// Boot a second server over the same journal directory; it replays
	// the session before serving.
	_, ts2 := newTestServer(t, Config{JournalDir: dir})
	out := mustCall(t, ts2, "GET", "/api/sessions/"+id+"/status", nil)
	oplog, _ := out["oplog"].(string)
	if !strings.Contains(oplog, "trace=replay-") {
		t.Errorf("replayed op log carries no synthetic replay trace:\n%s", oplog)
	}
	if liveTrace != "" && strings.Contains(oplog, liveTrace) {
		t.Errorf("replayed op log carries the live request trace %s:\n%s", liveTrace, oplog)
	}
}
