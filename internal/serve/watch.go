package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"clio/internal/obs"
	"clio/internal/relation"
)

// Continuous view observation: GET /api/sessions/{id}/watch long-polls
// for target-view deltas. Every successful state-changing op publishes
// one event carrying the op name, the originating request's trace ID,
// the D(G) maintenance disposition ("delta", "recompute", "none"), and
// the rows the op added to / removed from the target view — so a
// client can follow an edit loop without re-fetching the whole view,
// and can correlate each delta with the op's retained trace.

// Watch instrumentation.
var (
	cWatchEvents = obs.GetCounter("serve.watch.events")
	cWatchPolls  = obs.GetCounter("serve.watch.polls")
)

// watchRingCap bounds the per-session retained event window. A client
// that falls further behind than this sees a gap in sequence numbers
// and should re-fetch the view.
const watchRingCap = 64

// maxWatchWait bounds one long-poll; clients re-arm. Kept under the
// default request timeout so the poll answers 200-empty, not 504.
const maxWatchWait = 25 * time.Second

// watchEvent is one published view delta.
type watchEvent struct {
	Seq         int64      `json:"seq"`
	Op          string     `json:"op"`
	Trace       string     `json:"trace,omitempty"`
	Disposition string     `json:"disposition,omitempty"` // dg_maint note: delta | recompute | none
	Added       [][]string `json:"added,omitempty"`
	Removed     [][]string `json:"removed,omitempty"`
	Rows        int        `json:"rows"`
	ViewError   string     `json:"view_error,omitempty"`
}

// sessionWatch is a session's event feed. It has its own lock because
// long-pollers wait without holding sess.mu; publishers (who do hold
// sess.mu) only take w.mu briefly to append.
type sessionWatch struct {
	mu     sync.Mutex
	seq    int64
	events []watchEvent
	last   [][]string    // view rows after the last published event
	notify chan struct{} // closed and replaced on every publish
}

func newSessionWatch() *sessionWatch {
	return &sessionWatch{notify: make(chan struct{})}
}

// setBaseline installs the current view as the diff base without
// emitting an event; called once when the watch is created.
func (w *sessionWatch) setBaseline(rows [][]string) {
	w.mu.Lock()
	w.last = rows
	w.mu.Unlock()
}

// publish appends one event describing the view after an op. A view
// snapshot error is reported on the event rather than swallowed; the
// diff base is left untouched so the next successful snapshot reports
// the accumulated delta.
func (w *sessionWatch) publish(op, trace, disposition string, rows [][]string, viewErr error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	ev := watchEvent{Seq: w.seq, Op: op, Trace: trace, Disposition: disposition}
	if viewErr != nil {
		ev.ViewError = viewErr.Error()
		ev.Rows = len(w.last)
	} else {
		ev.Added, ev.Removed = diffRows(w.last, rows)
		ev.Rows = len(rows)
		w.last = rows
	}
	w.events = append(w.events, ev)
	if len(w.events) > watchRingCap {
		w.events = w.events[len(w.events)-watchRingCap:]
	}
	cWatchEvents.Inc()
	close(w.notify)
	w.notify = make(chan struct{})
}

// since returns the retained events with Seq > after, the latest
// sequence number, and the channel that closes on the next publish.
func (w *sessionWatch) since(after int64) ([]watchEvent, int64, chan struct{}) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []watchEvent
	for _, e := range w.events {
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out, w.seq, w.notify
}

// diffRows computes the multiset difference between two row lists,
// preserving each side's row order (the view renders canonically, so
// the order is stable across maintenance histories).
func diffRows(old, new [][]string) (added, removed [][]string) {
	key := func(r []string) string { return strings.Join(r, "\x1f") }
	oc := make(map[string]int, len(old))
	for _, r := range old {
		oc[key(r)]++
	}
	for _, r := range new {
		if k := key(r); oc[k] > 0 {
			oc[k]--
		} else {
			added = append(added, r)
		}
	}
	nc := make(map[string]int, len(new))
	for _, r := range new {
		nc[key(r)]++
	}
	for _, r := range old {
		if k := key(r); nc[k] > 0 {
			nc[k]--
		} else {
			removed = append(removed, r)
		}
	}
	return added, removed
}

// sessionViewRows renders the session's target view as display rows.
// The caller holds sess.mu.
func sessionViewRows(ctx context.Context, sess *Session) ([][]string, error) {
	view, err := sess.tool.TargetView(ctx)
	if err != nil {
		return nil, err
	}
	return renderRows(view), nil
}

// renderRows renders a relation's tuples as display-string rows.
func renderRows(view *relation.Relation) [][]string {
	rows := make([][]string, 0, view.Len())
	for _, t := range view.Tuples() {
		row := make([]string, 0, view.Scheme().Arity())
		for i := 0; i < view.Scheme().Arity(); i++ {
			row = append(row, fmt.Sprint(t.At(i)))
		}
		rows = append(rows, row)
	}
	return rows
}

// publishWatch feeds the session's watch (if one exists) after a
// successful op. The view snapshot runs on a detached context carrying
// only the request's trace ID: watchers must not consume the request's
// budget or inherit its deadline, but the event must still correlate
// with the op's trace. The caller holds sess.mu.
func (s *Server) publishWatch(ctx context.Context, sess *Session, op string) {
	w := sess.watch
	if w == nil {
		return
	}
	vctx := obs.WithTraceID(context.Background(), obs.TraceID(ctx))
	rows, err := sessionViewRows(vctx, sess)
	w.publish(op, obs.TraceID(ctx), obs.GetNote(ctx, "dg_maint"), rows, err)
}

// handleWatch long-polls for view deltas. Query parameters: after (the
// last seq the client has seen, default 0) and wait_ms (how long to
// block when nothing is newer, default 0 = answer immediately). The
// response is {"events": [...], "next": N}; pass next as the following
// poll's after. The wait happens without any session lock held, so
// watchers never block operations.
func (s *Server) handleWatch(ctx context.Context, r *http.Request) (any, error) {
	cWatchPolls.Inc()
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	if sess.gone {
		sess.mu.Unlock()
		return nil, notFound("no session %q", sess.ID)
	}
	if sess.tool == nil {
		sess.mu.Unlock()
		return nil, badRequest("session %s has no tool", sess.ID)
	}
	sess.touch()
	if sess.watch == nil {
		sess.watch = newSessionWatch()
		// Baseline on the request's own context: the first watcher pays
		// for the initial snapshot under its own budget. On error the
		// baseline stays empty and the first event reports every row as
		// added — safe, just verbose.
		if rows, verr := sessionViewRows(ctx, sess); verr == nil {
			sess.watch.setBaseline(rows)
		}
	}
	w := sess.watch
	sess.mu.Unlock()

	after, _ := strconv.ParseInt(r.URL.Query().Get("after"), 10, 64)
	waitMS, _ := strconv.ParseInt(r.URL.Query().Get("wait_ms"), 10, 64)
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxWatchWait {
		wait = maxWatchWait
	}
	deadline := time.Now().Add(wait)
	for {
		events, seq, notify := w.since(after)
		if len(events) > 0 || wait <= 0 {
			if events == nil {
				events = []watchEvent{}
			}
			return map[string]any{"events": events, "next": seq}, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return map[string]any{"events": []watchEvent{}, "next": seq}, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			// Answer the poll cleanly at the request deadline; the
			// client re-arms and nothing was lost (events are pulled by
			// sequence number, not pushed).
			timer.Stop()
			return map[string]any{"events": []watchEvent{}, "next": seq}, nil
		}
	}
}
