package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"clio/internal/fault"
	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/workspace"
)

// chaosSeed pins the fault-injection seed. `make chaos` exports
// CLIO_CHAOS_SEED so a failing run can be replayed exactly; unset, the
// suite still runs with a fixed default.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CLIO_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CLIO_CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// driveSession runs a fixed, all-successful operation sequence whose
// every step is journaled.
func driveSession(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "Children", "to": "PhoneDir"})
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"012", "Nina", "8", "100", "101", "d3"}})
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/accept", nil)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/undo", nil)
}

// sessionFingerprint captures everything a client can observe about a
// session's state: canonical op log (duration-free), the workspace
// set, the WYSIWYG target view, and the status report.
func sessionFingerprint(t *testing.T, s *Server, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		t.Fatalf("no session %s on server", id)
	}
	return map[string]any{
		"oplog":      sess.tool.OpLogCanonical(),
		"workspaces": mustCall(t, ts, "GET", "/api/sessions/"+id+"/workspaces", nil),
		"view":       mustCall(t, ts, "GET", "/api/sessions/"+id+"/view", nil)["text"],
		"status":     mustCall(t, ts, "GET", "/api/sessions/"+id+"/status", nil)["status"],
	}
}

// Kill -9 + restart must recover every journaled session
// byte-identically: the replayed op log, workspace set, target view,
// and status all equal the pre-crash state — even when the crash tore
// the journal tail of one session.
func TestChaosCrashReplayRestoresSessions(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JournalDir: dir}

	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	ids := []string{newPaperSession(t, ts1), newPaperSession(t, ts1)}
	for _, id := range ids {
		driveSession(t, ts1, id)
	}
	want := map[string]map[string]any{}
	for _, id := range ids {
		want[id] = sessionFingerprint(t, s1, ts1, id)
	}
	if w, ok := want[ids[0]]["oplog"].(string); !ok || w == "" {
		t.Fatal("empty canonical op log before crash")
	}
	// Simulate kill -9: stop serving without Shutdown, never closing
	// the journals. Every append was fsynced, so the files are whole.
	ts1.Close()

	// Tear the tail of one journal, as a crash mid-append would.
	path := workspace.JournalPath(dir, ids[1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(`{"crc":1,"rec":{"kind":"op`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg) // replays on construction
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	listed := mustCall(t, ts2, "GET", "/api/sessions", nil)
	if n := len(listed["sessions"].([]any)); n != len(ids) {
		t.Fatalf("restarted server lists %d sessions, want %d", n, len(ids))
	}
	for _, id := range ids {
		got := sessionFingerprint(t, s2, ts2, id)
		if got["oplog"] != want[id]["oplog"] {
			t.Errorf("session %s: replayed op log differs:\n--- want\n%s--- got\n%s",
				id, want[id]["oplog"], got["oplog"])
		}
		if got["view"] != want[id]["view"] {
			t.Errorf("session %s: replayed target view differs", id)
		}
		if got["status"] != want[id]["status"] {
			t.Errorf("session %s: replayed status differs", id)
		}
	}

	// The restored sessions are live, not read-only: new ops apply and
	// are journaled for the next crash. The ID allocator must also be
	// past the replayed IDs (no collision on the next create).
	fresh := newPaperSession(t, ts2)
	for _, id := range ids {
		if fresh == id {
			t.Fatalf("new session reused replayed ID %s", id)
		}
		mustCall(t, ts2, "POST", "/api/sessions/"+id+"/chase",
			map[string]any{"column": "Children.ID", "value": "002"})
	}
}

// Persistent journal-write failures must degrade sessions to
// memory-only — requests keep answering 200, the degraded gauge rises
// — never fail or wedge the API.
func TestChaosJournalDegradeKeepsServing(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })

	fault.Enable(chaosSeed(t))
	defer fault.Disable()
	fault.Set("journal.append", fault.Spec{Mode: fault.ModeError})

	dir := t.TempDir()
	s, ts := newTestServer(t, Config{JournalDir: dir})
	gauge := obs.GetGauge("clio.journal.degraded")
	before := gauge.Value()

	id := newPaperSession(t, ts)
	driveSession(t, ts, id)
	if gauge.Value() <= before {
		t.Errorf("clio.journal.degraded gauge did not rise: %d -> %d", before, gauge.Value())
	}
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if !sess.journal.Degraded() {
		t.Error("journal not degraded despite persistent write failure")
	}
}

// A D(G) computation that would exceed the configured budget answers
// 413 with a JSON body naming the exceeded limit; a generous budget
// changes nothing.
func TestChaosBudgetExceededAnswers413(t *testing.T) {
	_, tight := newTestServer(t, Config{Budget: fd.Budget{MaxRows: 2}})
	id := newPaperSession(t, tight)
	status, body := call(t, tight, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget compute: status %d body %v, want 413", status, body)
	}
	if body["limit"] != "rows" {
		t.Errorf("413 body does not name the exceeded limit: %v", body)
	}
	if _, ok := body["error"]; !ok {
		t.Errorf("413 body missing error envelope: %v", body)
	}
	// The session survives the refusal and still answers.
	mustCall(t, tight, "GET", "/api/sessions/"+id+"/workspaces", nil)

	_, roomy := newTestServer(t, Config{Budget: fd.Budget{MaxRows: 1 << 20, MaxBytes: 1 << 30}})
	id2 := newPaperSession(t, roomy)
	driveSession(t, roomy, id2)
	mustCall(t, roomy, "GET", "/api/sessions/"+id2+"/examples", nil)
}

// An injected panic in the D(G) pipeline fails exactly the request
// that hit it with a 500 — concurrent requests on other sessions
// complete, the panic lands in the victim session's op log, and the
// server keeps serving afterwards.
func TestChaosPanicIsolation(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	_, ts := newTestServer(t, Config{MaxInFlight: 16})

	victim := newPaperSession(t, ts)
	bystander := newPaperSession(t, ts)
	for _, id := range []string{victim, bystander} {
		mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
			map[string]any{"spec": "Children.ID -> Kids.ID"})
	}

	fault.Enable(chaosSeed(t))
	defer fault.Disable()
	fault.Set("fd.compute", fault.Spec{Mode: fault.ModePanic, Times: 1})

	panics := obs.GetCounter("clio.panics")
	before := panics.Value()

	// The bystander hammers non-computing endpoints concurrently with
	// the victim's doomed D(G) request; only the victim may fail.
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			for _, path := range []string{"/illustration", "/workspaces", "/status"} {
				if status, body := call(t, ts, "GET", "/api/sessions/"+bystander+path, nil); status != http.StatusOK {
					errc <- fmt.Errorf("bystander %s: status %d body %v", path, status, body)
				}
			}
		}
	}()
	status, body := call(t, ts, "GET", "/api/sessions/"+victim+"/examples", nil)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked compute: status %d body %v, want 500", status, body)
	}
	if _, ok := body["error"]; !ok {
		t.Errorf("500 body missing error envelope: %v", body)
	}
	if panics.Value() != before+1 {
		t.Errorf("clio.panics = %d, want %d", panics.Value(), before+1)
	}

	// The stack capture reached the victim's op log, and the point is
	// exhausted (Times: 1), so the session serves again — containment,
	// not contagion.
	oplog := mustCall(t, ts, "GET", "/api/sessions/"+victim+"/status", nil)["oplog"].(string)
	if !strings.Contains(oplog, "panic") {
		t.Errorf("victim op log has no panic record:\n%s", oplog)
	}
	mustCall(t, ts, "GET", "/api/sessions/"+victim+"/examples", nil)
	mustCall(t, ts, "GET", "/api/sessions/"+bystander+"/examples", nil)
}

// A *fd.PanicError surfacing as an operator error (a parallel worker
// died and was contained inside fd) maps to 500, not 422: the worker
// panic is an internal fault, not a semantic refusal.
func TestWorkerPanicErrorMapsTo500(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.handle("boom", func(ctx context.Context, r *http.Request) (any, error) {
		return nil, opError(&fd.PanicError{Where: "parallel worker", Value: "injected"})
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/test", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("PanicError mapped to %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
}
