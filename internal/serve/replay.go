package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"clio/internal/core"
	"clio/internal/csvio"
	"clio/internal/obs"
	"clio/internal/paperdb"
	"clio/internal/value"
	"clio/internal/workspace"
)

// Crash-safe sessions: every state-changing request is applied through
// the applyOp dispatcher below and, on success, appended to the
// session's write-ahead journal with the client's arguments verbatim.
// On boot the server replays each journal through the same dispatcher,
// so a restarted server restores every session to exactly the state
// the last acknowledged operation left it in.

// Replay instrumentation.
var (
	cReplaySessions = obs.GetCounter("clio.journal.replayed_sessions")
	cReplayOps      = obs.GetCounter("clio.journal.replayed_ops")
	cReplayFailures = obs.GetCounter("clio.journal.replay_failures")
)

// maxBodyBytes bounds a request body; larger bodies are client errors.
const maxBodyBytes = 1 << 20

// readArgs reads a request body as raw JSON. It returns nil for an
// empty body and a 400 for syntactically invalid JSON, so every
// malformed body is rejected before any session state is touched (and
// before anything is journaled).
func readArgs(r *http.Request) (json.RawMessage, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, badRequest("read body: %v", err)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return nil, nil
	}
	if !json.Valid(body) {
		return nil, badRequest("bad request body: invalid JSON")
	}
	return json.RawMessage(body), nil
}

// unmarshalArgs decodes journaled/request args into a typed struct,
// rejecting unknown fields. Nil args leave the struct zero-valued.
func unmarshalArgs(args json.RawMessage, into any) error {
	if len(args) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(args))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// initSession builds a session's instance, target, and tool from
// create args (nil args = paper defaults). The caller holds sess.mu
// and owns cleanup on error.
func (s *Server) initSession(ctx context.Context, sess *Session, args json.RawMessage) (any, error) {
	var req struct {
		Source string `json:"source"` // "paper" (default) or a CSV directory
		Target string `json:"target"` // "paper" (default with paper source) or "Name(a, b, ...)"
		Name   string `json:"name"`   // mapping name, default "mapping"
		Mine   bool   `json:"mine"`   // enable IND mining for this session
	}
	if err := unmarshalArgs(args, &req); err != nil {
		return nil, err
	}
	sess.rowOps = nil
	switch src := req.Source; {
	case src == "" || src == "paper":
		sess.in = paperdb.Instance()
	default:
		in, err := csvio.LoadDir(src)
		if err != nil {
			return nil, badRequest("load %q: %v", src, err)
		}
		sess.in = in
	}
	switch tgt := req.Target; {
	case tgt == "" || tgt == "paper":
		if req.Source != "" && req.Source != "paper" {
			return nil, badRequest("a target spec is required with a CSV source")
		}
		sess.target = paperdb.Kids()
	default:
		t, err := parseTargetSpec(tgt)
		if err != nil {
			return nil, err
		}
		sess.target = t
	}
	name := req.Name
	if name == "" {
		name = "mapping"
	}
	sess.tool = workspace.New(ctx, sess.in, sess.target, s.cfg.MineINDs || req.Mine)
	if err := sess.tool.Start(name); err != nil {
		return nil, opError(err)
	}
	return map[string]any{
		"id":        sess.ID,
		"relations": sess.in.Names(),
		"target":    sess.target.String(),
		"knowledge": len(sess.tool.Knowledge.Edges()),
	}, nil
}

// applyOp applies one state-changing operation to a locked session.
// Live handlers and boot-time journal replay both go through this
// dispatcher, so a replayed session re-executes exactly what the
// client originally sent.
func (s *Server) applyOp(ctx context.Context, sess *Session, op string, args json.RawMessage) (any, error) {
	switch op {
	case "corr":
		var req struct {
			Spec string `json:"spec"` // "Children.ID -> Kids.ID"
		}
		if err := unmarshalArgs(args, &req); err != nil {
			return nil, err
		}
		c, err := core.ParseCorrespondence(req.Spec)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		if err := sess.tool.AddCorrespondence(ctx, c); err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil

	case "walk":
		var req struct {
			From string `json:"from"` // graph node
			To   string `json:"to"`   // base relation
		}
		if err := unmarshalArgs(args, &req); err != nil {
			return nil, err
		}
		if req.From == "" || req.To == "" {
			return nil, badRequest("walk needs from and to")
		}
		if err := sess.tool.Walk(ctx, req.From, req.To); err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil

	case "chase":
		var req struct {
			Column string `json:"column"` // "Children.fid"
			Value  string `json:"value"`
		}
		if err := unmarshalArgs(args, &req); err != nil {
			return nil, err
		}
		if req.Column == "" {
			return nil, badRequest("chase needs column and value")
		}
		if err := sess.tool.Chase(ctx, req.Column, value.Parse(req.Value)); err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil

	case "filter":
		var req struct {
			Kind string `json:"kind"` // "source" or "target"
			Pred string `json:"pred"`
		}
		if err := unmarshalArgs(args, &req); err != nil {
			return nil, err
		}
		p, err := parsePred(req.Pred)
		if err != nil {
			return nil, err
		}
		switch req.Kind {
		case "source":
			err = sess.tool.AddSourceFilter(ctx, p)
		case "target":
			err = sess.tool.AddTargetFilter(ctx, p)
		default:
			return nil, badRequest("filter kind must be source or target")
		}
		if err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil

	case "use":
		var req struct {
			Workspace int `json:"workspace"`
		}
		if len(args) == 0 {
			return nil, badRequest("use needs a workspace id")
		}
		if err := unmarshalArgs(args, &req); err != nil {
			return nil, err
		}
		if err := sess.tool.Use(req.Workspace); err != nil {
			return nil, notFound("%v", err)
		}
		return workspacesBody(sess.tool), nil

	case "accept":
		if err := sess.tool.Confirm(); err != nil {
			return nil, opError(err)
		}
		return map[string]any{"accepted": len(sess.tool.Accepted())}, nil

	case "undo":
		if err := sess.tool.Undo(); err != nil {
			return nil, badRequest("%v", err)
		}
		return workspacesBody(sess.tool), nil

	case "rows":
		var req struct {
			Relation string   `json:"relation"`
			Values   []string `json:"values"`
			Delete   bool     `json:"delete"`
		}
		if err := unmarshalArgs(args, &req); err != nil {
			return nil, err
		}
		rel := sess.in.Relation(req.Relation)
		if rel == nil {
			return nil, notFound("no relation %q", req.Relation)
		}
		if len(req.Values) != rel.Scheme().Arity() {
			return nil, badRequest("relation %s has arity %d, got %d values",
				req.Relation, rel.Scheme().Arity(), len(req.Values))
		}
		vals := make([]value.Value, len(req.Values))
		for i, c := range req.Values {
			vals[i] = value.Parse(c)
		}
		// The tool applies the edit and delta-maintains the active
		// workspace's D(G) and illustration; on maintenance failure it
		// rolls the instance back, so a failed op is truly a no-op.
		if err := sess.tool.ApplyRows(ctx, req.Relation, vals, req.Delete); err != nil {
			return nil, opError(err)
		}
		// Remember the edit verbatim: journal snapshots replay row
		// ops before installing tool state, so a restored session's
		// instance matches the live one exactly.
		sess.rowOps = append(sess.rowOps, args)
		out := map[string]any{
			"relation": req.Relation,
			"tuples":   rel.Len(),
			"version":  rel.Version(),
		}
		if req.Delete {
			out["deleted"] = true
		}
		return out, nil
	}
	return nil, badRequest("unknown operation %q", op)
}

// replayJournals restores every journaled session found under the
// configured journal directory. Replay runs before the server starts
// listening, so restored sessions are indistinguishable from live ones
// by the time the first request arrives.
func (s *Server) replayJournals() {
	ids, err := workspace.JournalFiles(s.cfg.JournalDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: journal replay: listing %s: %v\n", s.cfg.JournalDir, err)
		return
	}
	for _, id := range ids {
		s.replaySession(id)
	}
}

// replaySession restores one session from its journal: re-execute the
// create record, then every op record, through the live dispatcher.
// Corrupt records were already skipped (and counted) by ReadJournal;
// an op that no longer applies is logged and skipped rather than
// abandoning the rest of the session.
func (s *Server) replaySession(id string) {
	path := workspace.JournalPath(s.cfg.JournalDir, id)
	recs, corrupt, err := workspace.ReadJournal(path)
	if corrupt > 0 {
		fmt.Fprintf(os.Stderr, "warn: journal %s: skipped %d corrupt record(s)\n", id, corrupt)
	}
	if err != nil || len(recs) == 0 || recs[0].Kind != "create" {
		cReplayFailures.Inc()
		fmt.Fprintf(os.Stderr, "warn: journal %s: not replayable (records=%d err=%v)\n", id, len(recs), err)
		return
	}
	sess := s.restoreSession(id)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// Replayed ops run under a synthetic trace ID so their op-log
	// records are distinguishable from live-request ops (which carry
	// the originating request's ID) and never collide with one.
	ctx := obs.WithTraceID(context.Background(), "replay-"+obs.NewTraceID())
	createArgs := recs[0].Args
	if _, err := s.initSession(ctx, sess, createArgs); err != nil {
		s.dropSession(id)
		cReplayFailures.Inc()
		fmt.Fprintf(os.Stderr, "warn: journal %s: create replay failed: %v\n", id, err)
		return
	}
	for _, rec := range recs[1:] {
		switch rec.Kind {
		case "snapshot":
			// A snapshot supersedes everything before it: rebuild the
			// session from scratch (fresh instance, knowledge, index),
			// then install the snapshotted state. Failure falls back
			// to whatever state the records so far produced.
			if _, err := s.initSession(ctx, sess, createArgs); err != nil {
				fmt.Fprintf(os.Stderr, "warn: journal %s: snapshot re-init failed: %v\n", id, err)
				continue
			}
			if err := s.restoreFromSnapshot(ctx, sess, rec.Args); err != nil {
				fmt.Fprintf(os.Stderr, "warn: journal %s: snapshot restore failed: %v\n", id, err)
				continue
			}
			cReplayOps.Inc()
		case "op":
			if _, err := s.applyOp(ctx, sess, rec.Op, rec.Args); err != nil {
				fmt.Fprintf(os.Stderr, "warn: journal %s: replay of %q failed: %v\n", id, rec.Op, err)
				continue
			}
			cReplayOps.Inc()
		}
	}
	// Reattach the journal over the surviving records: the file is
	// rewritten clean (dropping any torn tail) and future ops append.
	sess.journal = workspace.ResumeJournal(s.cfg.JournalDir, id, recs, s.cfg.journalOptions())
	cReplaySessions.Inc()
}

// restoreSession registers a session under its journaled ID and keeps
// the ID allocator ahead of every restored ID.
func (s *Server) restoreSession(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := &Session{ID: id, lastUsed: time.Now()}
	if s.cfg.SessionRPS > 0 {
		sess.bucket = newTokenBucket(s.cfg.SessionRPS)
	}
	s.sessions[id] = sess
	if n, ok := sessionNum(id); ok && n > s.nextID {
		s.nextID = n
	}
	gSessions.Set(int64(len(s.sessions)))
	return sess
}
