package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"clio/internal/workspace"
)

// Session lifecycle: long-running deployments must not accumulate
// sessions and unboundedly long journals forever. Two mechanisms bound
// them:
//
//   - Snapshot compaction: after every cfg.SnapshotEvery ops the
//     session's canonical state (tool state + row inserts) is written
//     into the journal as a "snapshot" record and the ops it
//     supersedes are discarded, so crash replay costs at most
//     ops-since-last-snapshot.
//
//   - Idle expiry: a reaper goroutine tombstones sessions idle past
//     cfg.IdleTTL — final snapshot, journal moved to the archive
//     directory, in-memory tool released. Tombstoned sessions are
//     absent from the live list but never silently lost (the paper's
//     Section 6 contract): POST /api/sessions/{id}/resurrect replays
//     the archived journal back to live, byte-identically.

// sessionSnapshot is the payload of a journal "snapshot" record: the
// row inserts applied since creation (verbatim, replayed through the
// normal dispatcher) and the tool's canonical state.
type sessionSnapshot struct {
	RowOps []json.RawMessage   `json:"rowOps,omitempty"`
	Tool   workspace.ToolState `json:"tool"`
}

// maybeSnapshot writes a snapshot record when one is due. The caller
// holds sess.mu. Failure is harmless: the journal keeps its op records
// and stays replayable, just unbounded.
func (s *Server) maybeSnapshot(sess *Session) {
	if !sess.journal.SnapshotDue() {
		return
	}
	s.snapshotSessionLocked(sess)
}

// snapshotSessionLocked serializes the session and hands it to the
// journal. The caller holds sess.mu.
func (s *Server) snapshotSessionLocked(sess *Session) bool {
	if sess.tool == nil || sess.journal == nil {
		return false
	}
	st, err := sess.tool.SnapshotState()
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: session %s: snapshot state: %v\n", sess.ID, err)
		return false
	}
	payload, err := marshalSnapshot(sessionSnapshot{RowOps: sess.rowOps, Tool: st})
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: session %s: snapshot marshal: %v\n", sess.ID, err)
		return false
	}
	return sess.journal.Snapshot(payload)
}

// marshalSnapshot marshals without HTML escaping, keeping embedded
// client args (e.g. "->" in correspondence specs) byte-identical.
func marshalSnapshot(snap sessionSnapshot) (json.RawMessage, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(snap); err != nil {
		return nil, err
	}
	return json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n")), nil
}

// restoreFromSnapshot rebuilds a freshly initialized session from a
// snapshot record: re-apply the row inserts through the normal
// dispatcher (repopulating sess.rowOps), then install the tool state.
// The caller holds sess.mu and has just run initSession.
func (s *Server) restoreFromSnapshot(ctx context.Context, sess *Session, args json.RawMessage) error {
	var snap sessionSnapshot
	if err := json.Unmarshal(args, &snap); err != nil {
		return fmt.Errorf("decode snapshot: %w", err)
	}
	for _, raw := range snap.RowOps {
		if _, err := s.applyOp(ctx, sess, "rows", raw); err != nil {
			return fmt.Errorf("replay snapshot rows: %w", err)
		}
	}
	return sess.tool.RestoreState(snap.Tool)
}

// startReaper launches the idle-session reaper goroutine; stopReaper
// (called from Shutdown) terminates it.
func (s *Server) startReaper() {
	s.reapStop = make(chan struct{})
	s.reapWG.Add(1)
	go func() {
		defer s.reapWG.Done()
		every := s.cfg.ReapEvery
		if every <= 0 {
			every = time.Second
		}
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-s.reapStop:
				return
			case now := <-ticker.C:
				s.reapIdle(now)
			}
		}
	}()
}

func (s *Server) stopReaper() {
	if s.reapStop != nil {
		close(s.reapStop)
		s.reapWG.Wait()
		s.reapStop = nil
	}
}

// reapIdle tombstones every session idle past the TTL as of now.
func (s *Server) reapIdle(now time.Time) {
	s.mu.Lock()
	candidates := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		candidates = append(candidates, sess)
	}
	s.mu.Unlock()
	for _, sess := range candidates {
		s.tombstone(sess, now)
	}
}

// tombstone archives one idle session: final snapshot (bounding the
// later resurrect replay), journal file moved to the archive
// directory, tool and instance released, session dropped from the live
// map. A session that was touched in the meantime, has no durable
// journal, or whose archive move fails (fault point "journal.archive")
// stays live and untouched.
func (s *Server) tombstone(sess *Session, now time.Time) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gone || now.Sub(sess.lastUsed) < s.cfg.IdleTTL {
		return
	}
	if sess.journal == nil || sess.journal.Degraded() {
		// Nothing durable to archive — expiring would lose the
		// session for good, violating the never-silently-lost
		// contract. Keep it.
		return
	}
	s.snapshotSessionLocked(sess)
	if err := workspace.ArchiveJournal(s.cfg.JournalDir, s.cfg.ArchiveDir, sess.ID); err != nil {
		fmt.Fprintf(os.Stderr, "warn: session %s: archive move failed, keeping live: %v\n", sess.ID, err)
		return
	}
	// The rename moved the file; the still-open handle remains valid,
	// so Close's final fsync lands in the archived file.
	sess.journal.Close()
	sess.journal = nil
	sess.tool = nil
	sess.in = nil
	sess.target = nil
	sess.rowOps = nil
	sess.gone = true
	s.dropSession(sess.ID)
	cExpired.Inc()
	gArchived.Set(int64(len(s.archivedIDs())))
}

// archivedIDs lists the tombstoned sessions present in the archive
// directory, sorted.
func (s *Server) archivedIDs() []string {
	if s.cfg.ArchiveDir == "" {
		return nil
	}
	ids, err := workspace.JournalFiles(s.cfg.ArchiveDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warn: listing archive %s: %v\n", s.cfg.ArchiveDir, err)
		return nil
	}
	return ids
}

// noteArchivedIDs advances the session ID allocator past every
// archived session, so a resurrected session never collides with a
// newly created one. Called once at boot.
func (s *Server) noteArchivedIDs() {
	ids := s.archivedIDs()
	s.mu.Lock()
	for _, id := range ids {
		if n, ok := sessionNum(id); ok && n > s.nextID {
			s.nextID = n
		}
	}
	s.mu.Unlock()
	gArchived.Set(int64(len(ids)))
}

func (s *Server) handleArchivedSessions(ctx context.Context, r *http.Request) (any, error) {
	ids := s.archivedIDs()
	if ids == nil {
		ids = []string{}
	}
	return map[string]any{"archived": ids}, nil
}

// handleResurrect replays an archived session back to live: the
// journal moves back into the live directory and replays through the
// same dispatcher boot uses, restoring the session byte-identically.
func (s *Server) handleResurrect(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	if s.cfg.JournalDir == "" || s.cfg.ArchiveDir == "" {
		return nil, badRequest("session archiving is disabled (no journal dir)")
	}
	if s.peekSession(id) != nil {
		return nil, &httpError{http.StatusConflict, fmt.Sprintf("session %q is already live", id)}
	}
	if err := workspace.UnarchiveJournal(s.cfg.ArchiveDir, s.cfg.JournalDir, id); err != nil {
		if os.IsNotExist(err) {
			return nil, notFound("no archived session %q", id)
		}
		return nil, &httpError{http.StatusInternalServerError, fmt.Sprintf("unarchive %q: %v", id, err)}
	}
	s.replaySession(id)
	sess := s.peekSession(id)
	if sess == nil {
		return nil, &httpError{http.StatusInternalServerError, fmt.Sprintf("resurrecting %q: replay failed", id)}
	}
	cResurrected.Inc()
	gArchived.Set(int64(len(s.archivedIDs())))
	return map[string]any{"id": id, "resurrected": true}, nil
}

// sessionNum extracts the numeric part of a session ID ("s12" -> 12).
func sessionNum(id string) (int, bool) {
	if len(id) < 2 || id[0] != 's' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
