package serve

import (
	"os"
	"path/filepath"
	"testing"

	"clio/internal/fd"
)

// A server booting with a spill directory must sweep partition files
// orphaned by a previous crash — temp files named clio-spill-*.part —
// and must leave everything else in the directory alone.
func TestServeBootSweepsOrphanedSpillFiles(t *testing.T) {
	dir := t.TempDir()
	orphans := []string{"clio-spill-111.part", "clio-spill-222.part"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "operator-notes.txt")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	newTestServer(t, Config{Budget: fd.Budget{MaxBytes: 1 << 30, SpillDir: dir}})

	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("orphaned spill file %s survived boot", name)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Error("boot sweep removed an unrelated file from the spill directory")
	}
}

// Without a spill directory New must not sweep anything — there is no
// directory the server owns.
func TestServeNoSpillDirNoSweep(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "clio-spill-333.part")
	if err := os.WriteFile(stray, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	newTestServer(t, Config{})
	if _, err := os.Stat(stray); err != nil {
		t.Error("a server with no spill dir removed files it does not own")
	}
}
