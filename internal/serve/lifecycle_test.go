package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"clio/internal/fault"
	"clio/internal/fd"
	"clio/internal/workspace"
)

// driveOps applies n successful journaled operations: a correspondence,
// a walk, and distinct row inserts for the remainder.
func driveOps(t *testing.T, ts *httptest.Server, id string, n int) {
	t.Helper()
	if n < 2 {
		t.Fatalf("driveOps needs n >= 2, got %d", n)
	}
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "Children", "to": "PhoneDir"})
	for i := 0; i < n-2; i++ {
		kid := strconv.Itoa(900 + i)
		mustCall(t, ts, "POST", "/api/sessions/"+id+"/rows",
			map[string]any{"relation": "Children",
				"values": []string{kid, "Kid" + kid, "9", "800", "801", "d9"}})
	}
}

// backdate marks a session idle since d ago, so a reapIdle pass sees it
// as expired without the test sleeping through a real TTL.
func backdate(t *testing.T, s *Server, id string, d time.Duration) {
	t.Helper()
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		t.Fatalf("no session %s to backdate", id)
	}
	sess.mu.Lock()
	sess.lastUsed = time.Now().Add(-d)
	sess.mu.Unlock()
}

// countKinds tallies journal record kinds for one session file.
func countKinds(t *testing.T, dir, id string) (total int, kinds map[string]int) {
	t.Helper()
	recs, corrupt, err := workspace.ReadJournal(workspace.JournalPath(dir, id))
	if err != nil {
		t.Fatalf("read journal %s: %v", id, err)
	}
	if corrupt > 0 {
		t.Fatalf("journal %s: %d corrupt records", id, corrupt)
	}
	kinds = map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	return len(recs), kinds
}

// Snapshot compaction bounds replay: with snapshot interval k, a
// session that performed N >= 4k operations keeps at most k+1 journal
// records at rest, and a kill -9 restart restores it byte-identically
// from that bounded journal.
func TestChaosSnapshotBoundsReplay(t *testing.T) {
	const k = 4
	const n = 4 * k // ops, well past several snapshot cycles
	dir := t.TempDir()
	cfg := Config{JournalDir: dir, SnapshotEvery: k}

	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	id := newPaperSession(t, ts1)
	driveOps(t, ts1, id, n)
	want := sessionFingerprint(t, s1, ts1, id)

	total, kinds := countKinds(t, dir, id)
	if total > k+1 {
		t.Errorf("journal holds %d records after %d ops, want <= %d (snapshot compaction)", total, n, k+1)
	}
	if kinds["snapshot"] == 0 {
		t.Errorf("journal has no snapshot record after %d ops (kinds %v)", n, kinds)
	}
	if kinds["create"] != 1 {
		t.Errorf("journal create records = %d, want 1", kinds["create"])
	}

	// Kill -9: stop serving without Shutdown; journals stay open-ended.
	ts1.Close()

	s2 := New(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	got := sessionFingerprint(t, s2, ts2, id)
	for _, key := range []string{"oplog", "view", "status"} {
		if got[key] != want[key] {
			t.Errorf("replay from snapshot differs in %s:\n--- want\n%v\n--- got\n%v",
				key, want[key], got[key])
		}
	}
	// The restored session is live and keeps snapshotting: one more
	// full interval must trigger a fresh snapshot, not unbounded growth.
	for i := 0; i < k; i++ {
		kid := strconv.Itoa(950 + i)
		mustCall(t, ts2, "POST", "/api/sessions/"+id+"/rows",
			map[string]any{"relation": "Children",
				"values": []string{kid, "Kid" + kid, "9", "800", "801", "d9"}})
	}
	if total, _ := countKinds(t, dir, id); total > k+1 {
		t.Errorf("restored session journal grew to %d records, want <= %d", total, k+1)
	}
}

// Idle expiry tombstones a session into the archive and resurrect
// brings it back byte-identically — including across a server restart
// while archived.
func TestChaosIdleExpiryResurrect(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JournalDir: dir, IdleTTL: time.Hour, SnapshotEvery: 4}

	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	id := newPaperSession(t, ts1)
	keep := newPaperSession(t, ts1) // stays busy, must survive the reap
	driveOps(t, ts1, id, 6)
	driveOps(t, ts1, keep, 2)
	want := sessionFingerprint(t, s1, ts1, id)

	// Expire only the idle session.
	backdate(t, s1, id, 2*time.Hour)
	s1.reapIdle(time.Now())

	listed := mustCall(t, ts1, "GET", "/api/sessions", nil)["sessions"].([]any)
	if len(listed) != 1 || listed[0] != keep {
		t.Fatalf("live sessions after reap: %v, want [%s]", listed, keep)
	}
	if status, _ := call(t, ts1, "GET", "/api/sessions/"+id+"/status", nil); status != http.StatusNotFound {
		t.Errorf("expired session answers %d, want 404", status)
	}
	archived := mustCall(t, ts1, "GET", "/api/sessions/archived", nil)["archived"].([]any)
	if len(archived) != 1 || archived[0] != id {
		t.Fatalf("archived list %v, want [%s]", archived, id)
	}

	// The tombstone survives a kill -9 restart: still archived, not live.
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := New(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Shutdown(context.Background())
	}()
	archived = mustCall(t, ts2, "GET", "/api/sessions/archived", nil)["archived"].([]any)
	if len(archived) != 1 || archived[0] != id {
		t.Fatalf("archive lost across restart: %v, want [%s]", archived, id)
	}
	for _, live := range mustCall(t, ts2, "GET", "/api/sessions", nil)["sessions"].([]any) {
		if live == id {
			t.Fatalf("archived session %s came back live without resurrect", id)
		}
	}

	// Resurrect: byte-identical state, fully live again.
	out := mustCall(t, ts2, "POST", "/api/sessions/"+id+"/resurrect", nil)
	if out["resurrected"] != true || out["id"] != id {
		t.Fatalf("resurrect answered %v", out)
	}
	got := sessionFingerprint(t, s2, ts2, id)
	for _, key := range []string{"oplog", "view", "status"} {
		if got[key] != want[key] {
			t.Errorf("resurrected session differs in %s:\n--- want\n%v\n--- got\n%v",
				key, want[key], got[key])
		}
	}
	mustCall(t, ts2, "POST", "/api/sessions/"+id+"/chase",
		map[string]any{"column": "Children.ID", "value": "002"})

	// Double resurrect conflicts; unknown IDs are 404; new sessions
	// never collide with resurrected IDs.
	if status, _ := call(t, ts2, "POST", "/api/sessions/"+id+"/resurrect", nil); status != http.StatusConflict {
		t.Errorf("resurrecting a live session: status %d, want 409", status)
	}
	if status, _ := call(t, ts2, "POST", "/api/sessions/s99/resurrect", nil); status != http.StatusNotFound {
		t.Errorf("resurrecting an unknown session: status %d, want 404", status)
	}
	if fresh := newPaperSession(t, ts2); fresh == id || fresh == keep {
		t.Errorf("new session reused ID %s", fresh)
	}
}

// A failing snapshot write must never lose acknowledged operations:
// the journal keeps its op records (unbounded but whole), requests keep
// answering 200, and a restart still replays the full state.
func TestChaosSnapshotWriteFaultKeepsServing(t *testing.T) {
	fault.Enable(chaosSeed(t))
	defer fault.Disable()
	fault.Set("journal.snapshot", fault.Spec{Mode: fault.ModeError})

	dir := t.TempDir()
	cfg := Config{JournalDir: dir, SnapshotEvery: 2}
	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	id := newPaperSession(t, ts1)
	const n = 6
	driveOps(t, ts1, id, n) // every op must still answer 200
	want := sessionFingerprint(t, s1, ts1, id)

	total, kinds := countKinds(t, dir, id)
	if kinds["snapshot"] != 0 {
		t.Errorf("snapshot record written despite injected fault (kinds %v)", kinds)
	}
	if total != n+1 {
		t.Errorf("journal holds %d records, want %d (create + every op)", total, n+1)
	}

	ts1.Close()
	fault.Disable()
	s2 := New(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	got := sessionFingerprint(t, s2, ts2, id)
	if got["oplog"] != want["oplog"] || got["view"] != want["view"] {
		t.Error("replay after snapshot faults lost state")
	}
}

// A failing archive move keeps the session fully live (expiring it
// would orphan the journal); the next reap pass retires it once the
// move succeeds.
func TestChaosArchiveMoveFaultKeepsSessionLive(t *testing.T) {
	fault.Enable(chaosSeed(t))
	defer fault.Disable()
	fault.Set("journal.archive", fault.Spec{Mode: fault.ModeError, Times: 1})

	dir := t.TempDir()
	cfg := Config{JournalDir: dir, IdleTTL: time.Hour}
	s, ts := newTestServer(t, cfg)
	defer s.Shutdown(context.Background())
	id := newPaperSession(t, ts)
	driveOps(t, ts, id, 2)

	backdate(t, s, id, 2*time.Hour)
	s.reapIdle(time.Now()) // archive move fails: session must stay live
	mustCall(t, ts, "GET", "/api/sessions/"+id+"/status", nil)
	if archived := mustCall(t, ts, "GET", "/api/sessions/archived", nil)["archived"].([]any); len(archived) != 0 {
		t.Fatalf("archive list %v after failed move, want empty", archived)
	}

	backdate(t, s, id, 2*time.Hour) // the status probe above touched it
	s.reapIdle(time.Now())          // fault exhausted: tombstone lands
	if status, _ := call(t, ts, "GET", "/api/sessions/"+id+"/status", nil); status != http.StatusNotFound {
		t.Errorf("session still live after second reap: status %d, want 404", status)
	}
	if archived := mustCall(t, ts, "GET", "/api/sessions/archived", nil)["archived"].([]any); len(archived) != 1 {
		t.Errorf("archive list %v, want exactly the tombstoned session", archived)
	}
}

// Per-session budgets isolate tenants: the session whose computation
// exceeds SessionBudget gets a 413 naming the limit while a concurrent
// session's requests keep answering 200 on the same server.
func TestSessionBudgetIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{SessionBudget: fd.Budget{MaxRows: 2}})
	hog := newPaperSession(t, ts)
	quiet := newPaperSession(t, ts)

	var wg sync.WaitGroup
	errc := make(chan error, 32)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			for _, path := range []string{"/workspaces", "/status"} {
				if status, body := call(t, ts, "GET", "/api/sessions/"+quiet+path, nil); status != http.StatusOK {
					errc <- fmt.Errorf("quiet session %s: status %d body %v", path, status, body)
				}
			}
		}
	}()
	status, body := call(t, ts, "POST", "/api/sessions/"+hog+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget session compute: status %d body %v, want 413", status, body)
	}
	if body["limit"] != "rows" {
		t.Errorf("413 body does not name the exceeded limit: %v", body)
	}
	if _, ok := body["error"]; !ok {
		t.Errorf("413 body missing error envelope: %v", body)
	}
	// The refused session itself stays usable for cheap requests.
	mustCall(t, ts, "GET", "/api/sessions/"+hog+"/workspaces", nil)
}

// The tighter of the server-wide and per-session budgets wins, treating
// zero fields as unlimited.
func TestSessionBudgetMinComposition(t *testing.T) {
	cases := []struct {
		a, b, want fd.Budget
	}{
		{fd.Budget{}, fd.Budget{}, fd.Budget{}},
		{fd.Budget{MaxRows: 10}, fd.Budget{}, fd.Budget{MaxRows: 10}},
		{fd.Budget{}, fd.Budget{MaxRows: 5}, fd.Budget{MaxRows: 5}},
		{fd.Budget{MaxRows: 10}, fd.Budget{MaxRows: 5}, fd.Budget{MaxRows: 5}},
		{fd.Budget{MaxRows: 3, MaxBytes: 100}, fd.Budget{MaxRows: 5}, fd.Budget{MaxRows: 3, MaxBytes: 100}},
		{fd.Budget{MaxBytes: 100}, fd.Budget{MaxRows: 5, MaxBytes: 50}, fd.Budget{MaxRows: 5, MaxBytes: 50}},
	}
	for _, c := range cases {
		if got := minBudget(c.a, c.b); got != c.want {
			t.Errorf("minBudget(%+v, %+v) = %+v, want %+v", c.a, c.b, got, c.want)
		}
	}
}

// Per-session rate limits isolate tenants: a session hammering the API
// past its token bucket sees 429s carrying Retry-After and the JSON
// error envelope, while a second session's bucket is untouched.
func TestSessionRateLimitIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{SessionRPS: 1}) // burst of 1 token
	noisy := newPaperSession(t, ts)
	calm := newPaperSession(t, ts)

	const burst = 8
	var wg sync.WaitGroup
	codes := make(chan *http.Response, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/api/sessions/" + noisy + "/status")
			if err != nil {
				t.Error(err)
				return
			}
			codes <- resp
		}()
	}
	wg.Wait()
	close(codes)

	ok, throttled := 0, 0
	for resp := range codes {
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			throttled++
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Errorf("429 Retry-After = %q, want a positive integer", ra)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Errorf("429 body not JSON: %v", err)
			} else if _, ok := body["error"]; !ok {
				t.Errorf("429 body missing error envelope: %v", body)
			}
			resp.Body.Close()
			continue
		default:
			t.Errorf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if ok == 0 {
		t.Error("every request throttled; the bucket should admit its burst")
	}
	if throttled == 0 {
		t.Errorf("no request throttled out of %d concurrent (burst 1)", burst)
	}

	// The calm session's bucket is full: its one request sails through
	// even immediately after the noisy session saturated its own.
	mustCall(t, ts, "GET", "/api/sessions/"+calm+"/status", nil)
}
