package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// callTraced issues a JSON request and returns the response's
// X-Clio-Trace header alongside the decoded body.
func callTraced(t *testing.T, ts *httptest.Server, method, path string, body any) (string, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d, body %v", method, path, resp.StatusCode, out)
	}
	return resp.Header.Get("X-Clio-Trace"), out
}

// watchEvents decodes the watch response's event list.
func watchEvents(t *testing.T, out map[string]any) []map[string]any {
	t.Helper()
	raw, ok := out["events"].([]any)
	if !ok {
		t.Fatalf("watch response has no events list: %v", out)
	}
	evs := make([]map[string]any, 0, len(raw))
	for _, e := range raw {
		evs = append(evs, e.(map[string]any))
	}
	return evs
}

// A row edit publishes one watch event carrying the op name, the
// originating request's trace ID (the same one in the response header
// and the retained trace index), the D(G) maintenance disposition,
// and the rows the edit added to the target view.
func TestWatchEventCarriesTraceDispositionAndDelta(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})

	// Prime the watch: baseline only, no events yet.
	out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/watch", nil)
	if evs := watchEvents(t, out); len(evs) != 0 {
		t.Fatalf("fresh watch already has %d events", len(evs))
	}

	trace, _ := callTraced(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"012", "Nina", "8", "100", "101", "d3"}})
	if trace == "" {
		t.Fatal("rows response carried no X-Clio-Trace header")
	}

	out = mustCall(t, ts, "GET", "/api/sessions/"+id+"/watch?after=0", nil)
	evs := watchEvents(t, out)
	if len(evs) != 1 {
		t.Fatalf("after one edit: %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev["op"] != "rows" {
		t.Errorf("event op = %v, want rows", ev["op"])
	}
	if ev["trace"] != trace {
		t.Errorf("event trace %v does not match the request's %s", ev["trace"], trace)
	}
	switch ev["disposition"] {
	case "delta", "recompute":
	default:
		t.Errorf("event disposition = %v, want delta or recompute", ev["disposition"])
	}
	added, _ := ev["added"].([]any)
	if len(added) == 0 {
		t.Fatalf("insert event reports no added rows: %v", ev)
	}
	// The added row carries the inserted key (only ID is mapped here).
	found := false
	for _, r := range added {
		for _, cell := range r.([]any) {
			if cell == "012" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("added rows %v do not contain the inserted tuple", added)
	}

	// Deleting the row again reports it as removed — and a second edit
	// on a primed materialization takes the delta path.
	_, _ = callTraced(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"012", "Nina", "8", "100", "101", "d3"}, "delete": true})
	next := int64(out["next"].(float64))
	out = mustCall(t, ts, "GET", "/api/sessions/"+id+"/watch?after="+jsonNum(next), nil)
	evs = watchEvents(t, out)
	if len(evs) != 1 {
		t.Fatalf("after delete: %d new events, want 1", len(evs))
	}
	if evs[0]["disposition"] != "delta" {
		t.Errorf("primed delete disposition = %v, want delta", evs[0]["disposition"])
	}
	removed, _ := evs[0]["removed"].([]any)
	if len(removed) == 0 {
		t.Fatalf("delete event reports no removed rows: %v", evs[0])
	}
}

func jsonNum(n int64) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// A long-poll parked on the watch endpoint wakes promptly when an edit
// lands, instead of sleeping out its full wait.
func TestWatchLongPollWakesOnEdit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newPaperSession(t, ts)
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	mustCall(t, ts, "GET", "/api/sessions/"+id+"/watch", nil) // prime

	type result struct {
		evs     []map[string]any
		elapsed time.Duration
	}
	done := make(chan result, 1)
	go func() {
		start := time.Now()
		out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/watch?after=0&wait_ms=10000", nil)
		done <- result{watchEvents(t, out), time.Since(start)}
	}()
	time.Sleep(100 * time.Millisecond) // let the poll park
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"013", "Omar", "9", "102", "103", "d1"}})
	select {
	case res := <-done:
		if len(res.evs) == 0 {
			t.Fatal("long-poll woke without events")
		}
		if res.elapsed > 5*time.Second {
			t.Fatalf("long-poll took %v, should have woken on the edit", res.elapsed)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("long-poll never returned after the edit")
	}
}

// An immediate poll with wait_ms=0 and no news answers 200 with an
// empty event list, and a bogus session 404s.
func TestWatchImmediatePollAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newPaperSession(t, ts)
	out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/watch?wait_ms=0", nil)
	if evs := watchEvents(t, out); len(evs) != 0 {
		t.Fatalf("idle watch returned %d events", len(evs))
	}
	if status, _ := call(t, ts, "GET", "/api/sessions/zzz/watch", nil); status != http.StatusNotFound {
		t.Fatalf("watch on missing session: status %d, want 404", status)
	}
	// Rows error paths: deleting an absent row is a client error (the
	// instance is untouched), and an unknown relation 404s.
	if status, _ := call(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"999", "Nobody", "1", "2", "3", "d9"}, "delete": true}); status != http.StatusUnprocessableEntity {
		t.Fatalf("delete of absent row: status %d, want 422", status)
	}
	if status, _ := call(t, ts, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Nope", "values": []string{"1"}}); status != http.StatusNotFound {
		t.Fatalf("rows on unknown relation: status %d, want 404", status)
	}
}

// Journal-replay equivalence for the edit loop: a session that
// inserted AND deleted rows replays byte-identically after a restart —
// the replayed ApplyRows edits walk the same maintenance path and the
// canonical D(G) order keeps the rendered view stable.
func TestJournalReplayRowDeletesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JournalDir: dir}
	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	id := newPaperSession(t, ts1)
	mustCall(t, ts1, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	mustCall(t, ts1, "POST", "/api/sessions/"+id+"/walk",
		map[string]any{"from": "Children", "to": "PhoneDir"})
	mustCall(t, ts1, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"012", "Nina", "8", "100", "101", "d3"}})
	mustCall(t, ts1, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"013", "Omar", "9", "102", "103", "d1"}})
	out := mustCall(t, ts1, "POST", "/api/sessions/"+id+"/rows",
		map[string]any{"relation": "Children", "values": []string{"012", "Nina", "8", "100", "101", "d3"}, "delete": true})
	if out["deleted"] != true {
		t.Fatalf("delete response missing deleted flag: %v", out)
	}
	want := sessionFingerprint(t, s1, ts1, id)
	ts1.Close()

	s2 := New(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	got := sessionFingerprint(t, s2, ts2, id)
	for _, key := range []string{"oplog", "view", "status"} {
		if got[key] != want[key] {
			t.Errorf("replay with deletes differs in %s:\n--- want\n%v\n--- got\n%v",
				key, want[key], got[key])
		}
	}
}
