package serve

import (
	"context"
	"net/http"
	"time"

	"clio/internal/fd"
	"clio/internal/obs"
)

// Operator-facing observability endpoints: Prometheus scrape, the
// statusz operational summary, and the retained-trace browser. These
// are mounted outside the admission gate (see routes) so they answer
// even when the request plane is saturated.

// handleMetrics renders the default registry in Prometheus text
// exposition format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, obs.SnapshotDefault())
}

// handleStatusz answers the one-page operational summary: enough to
// decide "is this server healthy and why not" without a dashboard.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	hits := obs.GetCounter("fd.cache.hits").Value()
	misses := obs.GetCounter("fd.cache.misses").Value()
	var ratio float64
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	body := map[string]any{
		"uptime_s":             int64(time.Since(s.started).Seconds()),
		"draining":             s.draining.Load(),
		"sessions":             len(s.sessionIDs()),
		"sessions_archived":    len(s.archivedIDs()),
		"sessions_expired":     cExpired.Value(),
		"sessions_resurrected": cResurrected.Value(),
		"in_flight":            gInFlight.Value(),
		"requests":             cRequests.Value(),
		"request_errors":       cErrors.Value(),
		"throttled":            cThrottled.Value(),
		"session_throttled":    cSessionThrottled.Value(),
		"panics":               cPanics.Value(),
		"budget_rejections":    cBudgetRejected.Value(),
		"journal_degraded":     obs.GetGauge("clio.journal.degraded").Value(),
		"spill": map[string]any{
			"enabled":      s.cfg.Budget.SpillDir != "",
			"dir":          s.cfg.Budget.SpillDir,
			"max_bytes":    s.cfg.Budget.MaxSpillBytes,
			"partitions":    obs.GetCounter("spill.partitions").Value(),
			"bytes":         obs.GetCounter("spill.bytes").Value(),
			"spill_aborts":  obs.GetCounter("spill.spill_aborts").Value(),
			"recursions":    obs.GetCounter("spill.recursions").Value(),
			"prefetch_hits": obs.GetCounter("spill.prefetch_hits").Value(),
		},
		"cache": map[string]any{
			"entries":   fd.CacheLen(),
			"capacity":  fd.CacheCapacity(),
			"hits":      hits,
			"misses":    misses,
			"hit_ratio": ratio,
		},
		"planner": map[string]any{
			"plans":     obs.GetCounter("fd.planner.plans").Value(),
			"reordered": obs.GetCounter("fd.planner.reordered").Value(),
		},
	}
	if s.traces != nil {
		body["traces_retained"] = s.traces.Len()
	}
	writeJSON(w, http.StatusOK, body)
}

// traceSummary is one /debug/traces index row.
type traceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurUS int64     `json:"dur_us"`
	Spans int       `json:"spans"`
}

func summarize(traces []*obs.Trace) []traceSummary {
	out := make([]traceSummary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, traceSummary{
			ID:    tr.ID,
			Name:  tr.Name,
			Start: tr.Start,
			DurUS: tr.Duration.Microseconds(),
			Spans: tr.Spans,
		})
	}
	return out
}

// handleTraceIndex lists the retained traces: most recent first, plus
// the slowest-seen list.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace retention disabled"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.traces.Cap(),
		"recent":   summarize(s.traces.Recent()),
		"slowest":  summarize(s.traces.Slowest()),
	})
}

// handleTraceGet returns one retained span tree in full.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace retention disabled"})
		return
	}
	tr := s.traces.Get(r.PathValue("id"))
	if tr == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no retained trace " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     tr.ID,
		"name":   tr.Name,
		"start":  tr.Start,
		"dur_us": tr.Duration.Microseconds(),
		"spans":  tr.Spans,
		"root":   obs.ToSpanJSON(tr.Root),
	})
}

// handleExplain compiles and executes the active mapping's D(G) plan
// (the same fd.Compute route the examples endpoint takes) and returns
// the operator tree annotated with each operator's rows/batches/timing
// from that execution, the picker's algorithm choice, and the memo
// cache's disposition.
func (s *Server) handleExplain(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		act := sess.tool.Active()
		if act == nil {
			return nil, badRequest("no active workspace")
		}
		res, err := fd.ExplainCompute(ctx, act.Mapping.Graph, sess.in)
		if err != nil {
			return nil, opError(err)
		}
		body := map[string]any{
			"mapping":     act.Mapping.Name,
			"algo":        res.Algo,
			"cache":       res.Cache,
			"is_tree":     res.IsTree,
			"nodes":       res.Nodes,
			"subsets":     res.Subsets,
			"tuples":      res.Tuples,
			"duration_us": res.Duration.Microseconds(),
		}
		if res.Spilled {
			body["spilled"] = true
			body["spill_parts"] = res.SpillParts
			body["spill_bytes"] = res.SpillBytes
			body["spill_depth"] = res.SpillDepth
			body["spill_recursions"] = res.SpillRecursions
			body["prefetch_hits"] = res.PrefetchHits
			body["partition_skew"] = res.PartitionSkew
		}
		if res.Root != nil {
			body["plan"] = obs.ToSpanJSON(res.Root)
		}
		if res.Planner != nil {
			body["planner"] = res.Planner
		}
		return body, nil
	})
}
