// Package serve exposes the mapping tool as a long-lived HTTP/JSON
// service: clients create sessions (one Clio tool each, Section 2's
// interactive loop), then drive correspondences, walks, chases,
// filters, illustrations, and the WYSIWYG target view over them.
// Sessions are independent and may be used concurrently; operations
// within one session serialize on a per-session lock. The server
// applies a bounded-concurrency admission gate (429 when saturated),
// per-request timeouts whose cancellation reaches fd.Compute, and
// graceful shutdown that drains in-flight requests.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clio/internal/fd"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/spill"
	"clio/internal/workspace"
)

// Service instrumentation.
var (
	cRequests         = obs.GetCounter("serve.requests")
	cErrors           = obs.GetCounter("serve.request_errors")
	cThrottled        = obs.GetCounter("serve.throttled")
	cSessionThrottled = obs.GetCounter("serve.session_throttled")
	cPanics           = obs.GetCounter("clio.panics")
	cBudgetRejected   = obs.GetCounter("serve.budget_rejections")
	cExpired          = obs.GetCounter("serve.sessions_expired")
	cResurrected      = obs.GetCounter("serve.sessions_resurrected")
	gInFlight         = obs.GetGauge("serve.in_flight")
	gSessions         = obs.GetGauge("serve.sessions")
	gArchived         = obs.GetGauge("serve.sessions_archived")
	hRequestNS        = obs.GetHistogram("serve.request.ns")
)

// Config tunes a Server.
type Config struct {
	// Addr is the listen address (host:port; ":0" picks a free port).
	Addr string
	// RequestTimeout bounds each request; its cancellation propagates
	// through the operator into fd.Compute. Default 30s.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently admitted requests; beyond it the
	// server answers 429 immediately. Default 32.
	MaxInFlight int
	// CacheCapacity sizes the D(G) memo cache (entries). Zero keeps
	// the package default; negative disables caching.
	CacheCapacity int
	// MineINDs enables inclusion-dependency mining when sessions build
	// their join knowledge.
	MineINDs bool
	// JournalDir enables crash-safe sessions: every session's
	// state-changing operations are journaled under this directory
	// and replayed on the next boot. Empty disables journaling.
	JournalDir string
	// JournalFsyncEvery fsyncs the journal after every Nth append
	// (default 1 = every append).
	JournalFsyncEvery int
	// JournalCompactEvery compacts a session journal after every Nth
	// op record (default 64; negative disables).
	JournalCompactEvery int
	// SnapshotEvery writes a full session-state snapshot into the
	// journal after every Nth op and discards the ops it supersedes,
	// bounding replay cost by ops-since-last-snapshot. Zero disables.
	// Requires JournalDir.
	SnapshotEvery int
	// IdleTTL tombstones sessions idle longer than this: a final
	// snapshot is taken, the journal moves to the archive directory,
	// and the in-memory tool is released. An archived session is
	// absent from the live list but resurrectable via
	// POST /api/sessions/{id}/resurrect. Zero disables; requires
	// JournalDir.
	IdleTTL time.Duration
	// ReapEvery is the idle-reaper tick (default IdleTTL/4).
	ReapEvery time.Duration
	// ArchiveDir stores tombstoned session journals (default
	// JournalDir/archive).
	ArchiveDir string
	// Budget caps the rows/bytes any single request may materialize
	// (D(G) computations included). Exceeding it returns 413. Zero
	// fields are unlimited.
	Budget fd.Budget
	// SessionBudget caps the rows/bytes a single session-scoped
	// request may materialize, layered under (field-wise min with) the
	// server-wide Budget. Zero fields are unlimited.
	SessionBudget fd.Budget
	// SessionRPS rate-limits each session with its own token bucket
	// (burst = ceil(SessionRPS), min 1): a saturating tenant gets 429
	// with Retry-After while other sessions keep serving under the
	// shared admission gate. Zero disables.
	SessionRPS float64
	// RetryAfter is the back-off hint sent with 429 responses
	// (rounded up to whole seconds). Default 1s.
	RetryAfter time.Duration
	// AccessLog, when non-nil, receives one structured JSON line per
	// completed request (trace ID, endpoint, session, status,
	// duration, budget charge, D(G) cache disposition).
	AccessLog io.Writer
	// SlowThreshold logs requests at least this slow at warning level
	// — to AccessLog when set, else to stderr. Zero disables slow-op
	// logging.
	SlowThreshold time.Duration
	// TraceBufferSize bounds the always-on trace retention ring: the N
	// most recent and N slowest completed span trees stay queryable
	// via GET /debug/traces. Zero means the default (32); negative
	// disables retention.
	TraceBufferSize int
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 64
	}
	if c.JournalCompactEvery == 0 {
		// The serve-level default stays 64 (negative disables); the
		// journal itself treats zero as disabled.
		c.JournalCompactEvery = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReapEvery <= 0 {
		c.ReapEvery = c.IdleTTL / 4
	}
	if c.ArchiveDir == "" && c.JournalDir != "" {
		c.ArchiveDir = filepath.Join(c.JournalDir, "archive")
	}
	return c
}

// journalOptions translates the config into per-session journal
// options. The foldable set lists exactly the ops whose single undo
// snapshot lets (op, undo) pairs cancel during compaction; "corr" is
// excluded because a correspondence on an already-mapped attribute
// auto-confirms first and snapshots twice.
func (c Config) journalOptions() workspace.JournalOptions {
	return workspace.JournalOptions{
		FsyncEvery:    c.JournalFsyncEvery,
		CompactEvery:  c.JournalCompactEvery,
		SnapshotEvery: c.SnapshotEvery,
		Foldable:      []string{"walk", "chase", "filter", "accept"},
	}
}

// Session is one tool instance owned by the server. Its lock
// serializes operations within the session; distinct sessions run
// concurrently.
type Session struct {
	ID string

	mu      sync.Mutex
	in      *relation.Instance
	target  *schema.Relation
	tool    *workspace.Tool
	journal *workspace.Journal
	// rowOps keeps every successful "rows" op's args verbatim since
	// session creation; journal snapshots embed them so a restored
	// tool sees the same instance mutations in the same order.
	rowOps []json.RawMessage
	// lastUsed drives idle expiry; gone marks a tombstoned session
	// (its journal archived, its tool released).
	lastUsed time.Time
	gone     bool

	// bucket is the per-session token-bucket rate limiter (nil when
	// SessionRPS is unset).
	bucket *tokenBucket

	// watch is the per-session view-delta feed, created lazily on the
	// first GET .../watch and fed by opHandler after every successful
	// state-changing op. Guarded by sess.mu for creation; its own lock
	// for event access (long-pollers must not hold sess.mu).
	watch *sessionWatch
}

// touch refreshes the idle clock. Callers hold sess.mu.
func (sess *Session) touch() { sess.lastUsed = time.Now() }

// tokenBucket is a minimal token-bucket rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rps float64) *tokenBucket {
	burst := math.Ceil(rps)
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rps, burst: burst, tokens: burst}
}

// take consumes one token if available; otherwise it reports how long
// until the next token accrues.
func (b *tokenBucket) take(now time.Time) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return wait, false
}

// Server is the HTTP front end.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	gate    chan struct{}
	httpSrv *http.Server
	ln      net.Listener

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	serveErr chan error

	// Observability plane: retained trace trees, structured access
	// log, slow-request logger (stderr fallback), drain flag for
	// healthz, and the statusz uptime anchor.
	traces   *obs.TraceBuffer
	access   *slog.Logger
	slow     *slog.Logger
	draining atomic.Bool
	started  time.Time

	reapStop chan struct{}
	reapWG   sync.WaitGroup
	shutOnce sync.Once
}

// New builds a server (not yet listening). It sizes the D(G) cache
// according to cfg.CacheCapacity.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cap := cfg.CacheCapacity
	if cap < 0 {
		cap = 0
	}
	fd.SetCacheCapacity(cap)
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		gate:     make(chan struct{}, cfg.MaxInFlight),
		sessions: map[string]*Session{},
		serveErr: make(chan error, 1),
		started:  time.Now(),
	}
	// The observability plane is always on for a server: metrics and
	// span retention are how an operator sees inside it. Background
	// (non-request) evaluation stays span-free, so this costs the hot
	// loops nothing (see algebra's idle-tracing alloc test).
	obs.SetEnabled(true)
	if cfg.TraceBufferSize >= 0 {
		size := cfg.TraceBufferSize
		if size == 0 {
			size = 32
		}
		// Chain onto whatever exporter is already installed (e.g. the
		// CLI's --trace stream), but never onto a previous server's
		// buffer: de-chain it so repeated New calls don't stack.
		prev := obs.CurrentExporter()
		if tb, ok := prev.(*obs.TraceBuffer); ok {
			prev = tb.Next()
		}
		s.traces = obs.NewTraceBuffer(size, prev)
		obs.SetExporter(s.traces)
	}
	if cfg.AccessLog != nil {
		s.access = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	if cfg.SlowThreshold > 0 {
		if cfg.AccessLog != nil {
			s.slow = s.access
		} else {
			s.slow = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		}
	}
	s.routes()
	if dir := cfg.Budget.SpillDir; dir != "" {
		// Reclaim spill partitions orphaned by a crash: live partition
		// files are always removed by their PartitionSet, so anything
		// matching the pattern at boot is garbage from a kill -9
		// mid-spill.
		if n, err := spill.SweepDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "serve: spill sweep of %s failed: %v\n", dir, err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "serve: removed %d orphaned spill file(s) from %s\n", n, dir)
		}
	}
	if cfg.JournalDir != "" {
		s.replayJournals()
		s.noteArchivedIDs()
	}
	if cfg.JournalDir != "" && cfg.IdleTTL > 0 {
		s.startReaper()
	}
	return s
}

// Handler returns the root handler (exported for tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on cfg.Addr and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		err := s.httpSrv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
		close(s.serveErr)
	}()
	return nil
}

// Addr reports the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown stops the idle reaper, stops accepting connections, drains
// in-flight requests until ctx expires, waits for the serve loop to
// exit, and closes every session journal. It works whether or not
// Start was ever called (tests drive the handler directly), and is
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutOnce.Do(func() {
		// Flip healthz to 503 first: a load balancer polling /healthz
		// must stop routing to a draining server before connections
		// start being refused.
		s.draining.Store(true)
		s.stopReaper()
		if s.httpSrv != nil {
			err = s.httpSrv.Shutdown(ctx)
			if serr := <-s.serveErr; serr != nil && err == nil {
				err = serr
			}
		}
		s.closeJournals()
	})
	return err
}

// closeJournals fsyncs and closes every session journal, leaving the
// files on disk for the next boot's replay.
func (s *Server) closeJournals() {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		sess.journal.Close()
		sess.mu.Unlock()
	}
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{http.StatusNotFound, fmt.Sprintf(format, args...)}
}

// opError classifies a mapping-operator failure: context errors,
// budget violations, and recovered worker panics pass through (they
// become 504/499, 413, and 500 respectively); anything else is a
// semantic failure of the requested operation — the server is fine,
// the operator could not apply — reported as 422.
func opError(err error) error {
	if err == nil ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, fd.ErrBudgetExceeded) {
		return err
	}
	var pe *fd.PanicError
	if errors.As(err, &pe) {
		return err
	}
	var he *httpError
	if errors.As(err, &he) {
		return err
	}
	return &httpError{http.StatusUnprocessableEntity, err.Error()}
}

// handlerFunc is a JSON endpoint: it returns the response body (or an
// error, possibly an *httpError with a status).
type handlerFunc func(ctx context.Context, r *http.Request) (any, error)

// handle wraps a handler with the service plumbing: admission gate
// (429 + Retry-After when saturated), in-flight gauge, per-request
// trace ID (generated up front, returned as X-Clio-Trace on every
// response including rejections, and propagated through ctx into the
// operators), per-request timeout, per-request resource budget, a span
// per endpoint, JSON encoding, error mapping, structured access
// logging, and panic containment (a handler panic answers 500 and is
// captured to stderr and the session op log; the server keeps
// serving).
func (s *Server) handle(name string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		trace := obs.NewTraceID()
		w.Header().Set("X-Clio-Trace", trace)
		start := time.Now()
		status := http.StatusOK
		var notes *obs.Notes
		var reqCtx context.Context
		// Registered first so it runs last during unwinding: by then
		// the panic defer below has settled the final status.
		defer func() {
			s.logAccess(name, r, trace, status, time.Since(start), reqCtx, notes)
		}()

		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		default:
			cThrottled.Inc()
			secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			status = http.StatusTooManyRequests
			writeJSON(w, status,
				map[string]string{"error": "server saturated, retry later"})
			return
		}
		gInFlight.Add(1)
		defer gInFlight.Add(-1)
		cRequests.Inc()
		defer hRequestNS.ObserveSince(start)

		// Per-session token bucket, layered under the server-wide
		// gate: one tenant hammering its session gets 429 while other
		// sessions' buckets stay full.
		sessID := r.PathValue("id")
		if sess := s.peekSession(sessID); sess != nil && sess.bucket != nil {
			if wait, ok := sess.bucket.take(time.Now()); !ok {
				cSessionThrottled.Inc()
				secs := int((wait + time.Second - 1) / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				status = http.StatusTooManyRequests
				writeJSON(w, status,
					map[string]string{"error": "session rate limit exceeded, retry later"})
				return
			}
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = obs.WithTraceID(ctx, trace)
		ctx, notes = obs.WithNotes(ctx)
		budget := s.cfg.Budget
		if sessID != "" {
			budget = minBudget(budget, s.cfg.SessionBudget)
		}
		if !budget.Unlimited() {
			ctx = fd.WithBudget(ctx, budget)
		}
		reqCtx = ctx
		ctx, span := obs.StartSpan(ctx, "serve."+name)
		defer span.End()
		span.SetStr("trace_id", trace)
		span.SetStr("method", r.Method)
		span.SetStr("path", r.URL.Path)

		// Innermost defer: it recovers first during unwinding, after
		// the handler's own defers (session unlocks) have already run.
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			cPanics.Inc()
			cErrors.Inc()
			detail := fmt.Sprintf("%s: %v", name, rec)
			fmt.Fprintf(os.Stderr, "panic recovered in serve.%s: %v\n%s", name, rec, debug.Stack())
			s.logSessionPanic(r.PathValue("id"), detail)
			span.SetStr("panic", fmt.Sprint(rec))
			span.SetInt("status", http.StatusInternalServerError)
			status = http.StatusInternalServerError
			writeJSON(w, status,
				map[string]string{"error": "internal error: " + detail})
		}()

		resp, err := h(ctx, r.WithContext(ctx))
		if err != nil {
			cErrors.Inc()
			status = http.StatusInternalServerError
			body := map[string]any{"error": err.Error()}
			var he *httpError
			var be *fd.BudgetError
			switch {
			case errors.As(err, &be):
				// Resource budget exceeded: the request asked for more
				// than the server will materialize. Name the limit so
				// clients can tell rows from bytes, and the spill state
				// so they can tell "enable -spill-dir" from "raise
				// -max-spill-bytes".
				status = http.StatusRequestEntityTooLarge
				cBudgetRejected.Inc()
				body["limit"] = be.Limit
				body["max"] = be.Max
				body["got"] = be.Got
				spillState := be.Spill
				if spillState == "" {
					// Errors built before the spill tier (or outside the
					// tracker) carry no state; report the request's
					// configuration.
					if budget.SpillDir != "" {
						spillState = fd.SpillEnabled
					} else {
						spillState = fd.SpillDisabled
					}
				}
				body["spill"] = spillState
			case errors.As(err, &he):
				status = he.status
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
			case errors.Is(err, context.Canceled):
				status = 499 // client went away
			}
			span.SetInt("status", int64(status))
			span.SetStr("error", err.Error())
			writeJSON(w, status, body)
			return
		}
		span.SetInt("status", http.StatusOK)
		writeJSON(w, http.StatusOK, resp)
	}
}

// logAccess emits the structured access-log line for one finished
// request, and the slow-request warning when the duration crosses the
// configured threshold. reqCtx carries the request's budget tracker
// (nil before admission), notes the engine's scratchpad annotations.
func (s *Server) logAccess(endpoint string, r *http.Request, trace string, status int, dur time.Duration, reqCtx context.Context, notes *obs.Notes) {
	slow := s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold
	if s.access == nil && !(slow && s.slow != nil) {
		return
	}
	args := []any{
		"trace", trace,
		"endpoint", endpoint,
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", float64(dur.Microseconds()) / 1e3,
	}
	if id := r.PathValue("id"); id != "" {
		args = append(args, "session", id)
	}
	if reqCtx != nil {
		if rows, bytes := fd.BudgetUsed(reqCtx); rows > 0 || bytes > 0 {
			args = append(args, "budget_rows", rows, "budget_bytes", bytes)
		}
	}
	if v := notes.Get("dg_cache"); v != "" {
		args = append(args, "dg_cache", v)
	}
	switch {
	case slow && s.slow != nil:
		s.slow.Warn("slow request", args...)
		if s.access != nil && s.slow != s.access {
			s.access.Info("request", args...)
		}
	case s.access != nil:
		s.access.Info("request", args...)
	}
}

// logSessionPanic records a recovered panic in the session's op log,
// best effort: the session (or its tool) may not exist.
func (s *Server) logSessionPanic(id, detail string) {
	if id == "" {
		return
	}
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return
	}
	sess.mu.Lock()
	tool := sess.tool
	sess.mu.Unlock()
	if tool != nil {
		tool.LogPanic(detail)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// minBudget combines two budgets field-wise: the tighter non-zero
// limit wins (zero means unlimited). The spill directory — a
// capability, not a limit — carries over from whichever budget has one
// (the server config in practice; session budgets only tighten caps).
func minBudget(a, b fd.Budget) fd.Budget {
	dir := a.SpillDir
	if dir == "" {
		dir = b.SpillDir
	}
	// Recursion depth rides with whichever budget supplies the spill
	// capability (session budgets only tighten row/byte caps).
	depth := a.SpillRecursionDepth
	if a.SpillDir == "" {
		depth = b.SpillRecursionDepth
	}
	return fd.Budget{
		MaxRows:             minLimit(a.MaxRows, b.MaxRows),
		MaxBytes:            minLimit(a.MaxBytes, b.MaxBytes),
		SpillDir:            dir,
		MaxSpillBytes:       minLimit(a.MaxSpillBytes, b.MaxSpillBytes),
		SpillRecursionDepth: depth,
	}
}

func minLimit(a, b int64) int64 {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	}
	return b
}

// newSession registers a fresh session.
func (s *Server) newSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess := &Session{ID: "s" + strconv.Itoa(s.nextID), lastUsed: time.Now()}
	if s.cfg.SessionRPS > 0 {
		sess.bucket = newTokenBucket(s.cfg.SessionRPS)
	}
	s.sessions[sess.ID] = sess
	gSessions.Set(int64(len(s.sessions)))
	return sess
}

// peekSession returns the live session for id, or nil — never an
// error; middleware uses it before the handler resolves the session
// properly.
func (s *Server) peekSession(id string) *Session {
	if id == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// session resolves a session ID from the request path.
func (s *Server) session(r *http.Request) (*Session, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, notFound("no session %q", id)
	}
	return sess, nil
}

func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	gSessions.Set(int64(len(s.sessions)))
	return true
}

func (s *Server) sessionIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
