package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"clio/internal/fd"
)

// callRaw issues a request with a verbatim (possibly malformed) body
// and returns status, Content-Type, and the raw response bytes.
func callRaw(t *testing.T, ts *httptest.Server, method, path, body string) (int, string, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), data
}

// Every endpoint must answer a JSON envelope with a correct status on
// every failure path: malformed bodies are 400s, missing sessions are
// 404s, and no endpoint ever falls back to a bare text error.
func TestAllEndpointsErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := newPaperSession(t, ts)
	// Seed a mapping so the D(G)-backed GET endpoints have work to do.
	mustCall(t, ts, "POST", "/api/sessions/"+id+"/corr",
		map[string]any{"spec": "Children.ID -> Kids.ID"})
	const malformed = `{"spec": ` // truncated JSON

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"healthz", "GET", "/healthz", "", http.StatusOK},
		{"stats", "GET", "/api/stats", "", http.StatusOK},
		{"session_create_malformed", "POST", "/api/sessions", malformed, http.StatusBadRequest},
		{"session_list", "GET", "/api/sessions", "", http.StatusOK},
		{"session_delete_missing", "DELETE", "/api/sessions/nope", "", http.StatusNotFound},
		{"session_archived", "GET", "/api/sessions/archived", "", http.StatusOK},
		{"resurrect_disabled", "POST", "/api/sessions/nope/resurrect", "", http.StatusBadRequest},
		{"corr_malformed", "POST", "/api/sessions/" + id + "/corr", malformed, http.StatusBadRequest},
		{"walk_malformed", "POST", "/api/sessions/" + id + "/walk", malformed, http.StatusBadRequest},
		{"chase_malformed", "POST", "/api/sessions/" + id + "/chase", malformed, http.StatusBadRequest},
		{"filter_malformed", "POST", "/api/sessions/" + id + "/filter", malformed, http.StatusBadRequest},
		{"use_malformed", "POST", "/api/sessions/" + id + "/use", malformed, http.StatusBadRequest},
		{"accept_malformed", "POST", "/api/sessions/" + id + "/accept", malformed, http.StatusBadRequest},
		{"undo_malformed", "POST", "/api/sessions/" + id + "/undo", malformed, http.StatusBadRequest},
		{"rows_malformed", "POST", "/api/sessions/" + id + "/rows", malformed, http.StatusBadRequest},
		{"corr_unknown_field", "POST", "/api/sessions/" + id + "/corr", `{"nope":1}`, http.StatusBadRequest},
		{"walk_missing_session", "POST", "/api/sessions/nope/walk", `{"from":"a","to":"b"}`, http.StatusNotFound},
		{"workspaces", "GET", "/api/sessions/" + id + "/workspaces", "", http.StatusOK},
		{"workspaces_missing", "GET", "/api/sessions/nope/workspaces", "", http.StatusNotFound},
		{"illustration", "GET", "/api/sessions/" + id + "/illustration", "", http.StatusOK},
		{"examples", "GET", "/api/sessions/" + id + "/examples", "", http.StatusOK},
		{"view", "GET", "/api/sessions/" + id + "/view", "", http.StatusOK},
		{"status", "GET", "/api/sessions/" + id + "/status", "", http.StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, ctype, data := callRaw(t, ts, c.method, c.path, c.body)
			if status != c.want {
				t.Errorf("status %d, want %d (body %s)", status, c.want, data)
			}
			if !strings.HasPrefix(ctype, "application/json") {
				t.Errorf("Content-Type %q, want application/json", ctype)
			}
			var body map[string]any
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatalf("response is not a JSON object: %v\n%s", err, data)
			}
			if status >= 400 {
				msg, ok := body["error"].(string)
				if !ok || msg == "" {
					t.Errorf("error response missing error field: %s", data)
				}
			}
		})
	}

	// A malformed body must never have been journaled or applied: the
	// session still has exactly its initial workspace state.
	out := mustCall(t, ts, "GET", "/api/sessions/"+id+"/workspaces", nil)
	if _, ok := out["workspaces"]; !ok {
		t.Error("session state damaged by malformed requests")
	}
}

// Every 413 must name the spill configuration that applied: "disabled"
// when no spill directory is set (the operator's remedy is -spill-dir),
// "enabled" when spill ran, could not absorb the state, and recursion
// was off (the remedy is -spill-recursion-depth), "recursion_exhausted"
// when recursive re-partitioning also could not make a partition fit
// (the remedy is -max-bytes), and "disk_cap_exceeded" when
// -max-spill-bytes was the binding limit.
func TestBudget413EnvelopeNamesSpillState(t *testing.T) {
	cases := []struct {
		name      string
		budget    func(t *testing.T) fd.Budget
		wantLimit string
		wantSpill string
	}{
		{
			name:      "spill disabled",
			budget:    func(t *testing.T) fd.Budget { return fd.Budget{MaxRows: 2} },
			wantLimit: "rows",
			wantSpill: "disabled",
		},
		{
			name: "spill enabled but state does not fit, recursion off",
			budget: func(t *testing.T) fd.Budget {
				return fd.Budget{MaxBytes: 64, SpillDir: t.TempDir(), SpillRecursionDepth: -1}
			},
			wantLimit: "bytes",
			wantSpill: "enabled",
		},
		{
			name: "recursion exhausted",
			budget: func(t *testing.T) fd.Budget {
				// A 64-byte cap cannot hold even one tuple, so salted
				// re-partitioning runs to the depth limit and gives up.
				return fd.Budget{MaxBytes: 64, SpillDir: t.TempDir()}
			},
			wantLimit: "bytes",
			wantSpill: "recursion_exhausted",
		},
		{
			name: "disk cap exceeded",
			budget: func(t *testing.T) fd.Budget {
				return fd.Budget{MaxBytes: 64, SpillDir: t.TempDir(), MaxSpillBytes: 1}
			},
			wantLimit: "spill",
			wantSpill: "disk_cap_exceeded",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, ts := newTestServer(t, Config{Budget: c.budget(t)})
			id := newPaperSession(t, ts)
			status, body := call(t, ts, "POST", "/api/sessions/"+id+"/corr",
				map[string]any{"spec": "Children.ID -> Kids.ID"})
			if status != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d body %v, want 413", status, body)
			}
			if body["limit"] != c.wantLimit {
				t.Errorf("limit = %v, want %q (body %v)", body["limit"], c.wantLimit, body)
			}
			if body["spill"] != c.wantSpill {
				t.Errorf("spill = %v, want %q (body %v)", body["spill"], c.wantSpill, body)
			}
			if _, ok := body["error"]; !ok {
				t.Errorf("413 body missing error envelope: %v", body)
			}
		})
	}
}

// 429 responses carry a Retry-After header that parses as integer
// seconds, so well-behaved clients can back off without guessing.
func TestThrottledResponseHasRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RetryAfter: 3 * 1e9}) // 3s
	s.gate <- struct{}{}                                                  // saturate
	defer func() { <-s.gate }()

	status, ctype, data := callRaw(t, ts, "GET", "/api/sessions", "")
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429", status)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("429 Content-Type %q, want application/json", ctype)
	}
	resp, err := ts.Client().Get(ts.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q does not parse as integer seconds: %v", ra, err)
	}
	if secs != 3 {
		t.Errorf("Retry-After = %d, want 3", secs)
	}
	var body map[string]any
	if err := json.Unmarshal(data, &body); err != nil || body["error"] == nil {
		t.Errorf("429 body is not an error envelope: %s", data)
	}
}
