package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"clio/internal/core"
	"clio/internal/csvio"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/paperdb"
	"clio/internal/render"
	"clio/internal/schema"
	"clio/internal/value"
	"clio/internal/workspace"
)

// routes wires every endpoint onto the mux.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.Handle("GET /api/stats", s.handle("stats", s.handleStats))
	s.mux.Handle("POST /api/sessions", s.handle("session_create", s.handleCreateSession))
	s.mux.Handle("GET /api/sessions", s.handle("session_list", s.handleListSessions))
	s.mux.Handle("DELETE /api/sessions/{id}", s.handle("session_delete", s.handleDeleteSession))
	s.mux.Handle("POST /api/sessions/{id}/corr", s.handle("corr", s.handleCorr))
	s.mux.Handle("POST /api/sessions/{id}/walk", s.handle("walk", s.handleWalk))
	s.mux.Handle("POST /api/sessions/{id}/chase", s.handle("chase", s.handleChase))
	s.mux.Handle("POST /api/sessions/{id}/filter", s.handle("filter", s.handleFilter))
	s.mux.Handle("POST /api/sessions/{id}/use", s.handle("use", s.handleUse))
	s.mux.Handle("POST /api/sessions/{id}/accept", s.handle("accept", s.handleAccept))
	s.mux.Handle("POST /api/sessions/{id}/undo", s.handle("undo", s.handleUndo))
	s.mux.Handle("POST /api/sessions/{id}/rows", s.handle("rows", s.handleAddRow))
	s.mux.Handle("GET /api/sessions/{id}/workspaces", s.handle("workspaces", s.handleWorkspaces))
	s.mux.Handle("GET /api/sessions/{id}/illustration", s.handle("illustration", s.handleIllustration))
	s.mux.Handle("GET /api/sessions/{id}/examples", s.handle("examples", s.handleExamples))
	s.mux.Handle("GET /api/sessions/{id}/view", s.handle("view", s.handleView))
	s.mux.Handle("GET /api/sessions/{id}/status", s.handle("status", s.handleStatus))
}

// parseTargetSpec parses "Name(attr, attr, ...)".
func parseTargetSpec(spec string) (*schema.Relation, error) {
	open := strings.IndexByte(spec, '(')
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return nil, badRequest("bad target spec %q (want Name(attr, ...))", spec)
	}
	name := strings.TrimSpace(spec[:open])
	var attrs []schema.Attribute
	for _, a := range strings.Split(spec[open+1:len(spec)-1], ",") {
		if a = strings.TrimSpace(a); a != "" {
			attrs = append(attrs, schema.Attribute{Name: a})
		}
	}
	if name == "" || len(attrs) == 0 {
		return nil, badRequest("bad target spec %q (want Name(attr, ...))", spec)
	}
	return schema.NewRelation(name, attrs...), nil
}

func (s *Server) handleCreateSession(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		Source string `json:"source"`  // "paper" (default) or a CSV directory
		Target string `json:"target"`  // "paper" (default with paper source) or "Name(a, b, ...)"
		Name   string `json:"name"`    // mapping name, default "mapping"
		Mine   bool   `json:"mine"`    // enable IND mining for this session
	}
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			return nil, err
		}
	}
	sess := s.newSession()
	sess.mu.Lock()
	defer sess.mu.Unlock()

	switch src := req.Source; {
	case src == "" || src == "paper":
		sess.in = paperdb.Instance()
	default:
		in, err := csvio.LoadDir(src)
		if err != nil {
			s.dropSession(sess.ID)
			return nil, badRequest("load %q: %v", src, err)
		}
		sess.in = in
	}
	switch tgt := req.Target; {
	case tgt == "" || tgt == "paper":
		if req.Source != "" && req.Source != "paper" {
			s.dropSession(sess.ID)
			return nil, badRequest("a target spec is required with a CSV source")
		}
		sess.target = paperdb.Kids()
	default:
		t, err := parseTargetSpec(tgt)
		if err != nil {
			s.dropSession(sess.ID)
			return nil, err
		}
		sess.target = t
	}
	name := req.Name
	if name == "" {
		name = "mapping"
	}
	sess.tool = workspace.New(ctx, sess.in, sess.target, s.cfg.MineINDs || req.Mine)
	if err := sess.tool.Start(name); err != nil {
		s.dropSession(sess.ID)
		return nil, err
	}
	return map[string]any{
		"id":        sess.ID,
		"relations": sess.in.Names(),
		"target":    sess.target.String(),
		"knowledge": len(sess.tool.Knowledge.Edges()),
	}, nil
}

func (s *Server) handleListSessions(ctx context.Context, r *http.Request) (any, error) {
	return map[string]any{"sessions": s.sessionIDs()}, nil
}

func (s *Server) handleDeleteSession(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	if !s.dropSession(id) {
		return nil, notFound("no session %q", id)
	}
	return map[string]string{"deleted": id}, nil
}

func (s *Server) handleStats(ctx context.Context, r *http.Request) (any, error) {
	return map[string]any{
		"sessions":       len(s.sessionIDs()),
		"cache_entries":  fd.CacheLen(),
		"cache_capacity": fd.CacheCapacity(),
		"in_flight":      gInFlight.Value(),
		"requests":       cRequests.Value(),
		"throttled":      cThrottled.Value(),
	}, nil
}

// withSession resolves the session and runs f under the session lock.
func (s *Server) withSession(r *http.Request, f func(sess *Session) (any, error)) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.tool == nil {
		return nil, badRequest("session %s has no tool", sess.ID)
	}
	return f(sess)
}

// workspacesBody is the canonical response after operators that
// replace the workspace set.
func workspacesBody(tool *workspace.Tool) map[string]any {
	act := tool.Active()
	var list []map[string]any
	for _, w := range tool.Workspaces() {
		list = append(list, map[string]any{
			"id":     w.ID,
			"note":   w.Note,
			"rank":   w.Rank,
			"nodes":  w.Mapping.Graph.Nodes(),
			"active": w == act,
		})
	}
	body := map[string]any{"workspaces": list}
	if act != nil {
		body["active"] = act.ID
	}
	return body
}

func (s *Server) handleCorr(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		Spec string `json:"spec"` // "Children.ID -> Kids.ID"
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	return s.withSession(r, func(sess *Session) (any, error) {
		c, err := core.ParseCorrespondence(req.Spec)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		if err := sess.tool.AddCorrespondence(ctx, c); err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil
	})
}

func (s *Server) handleWalk(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		From string `json:"from"` // graph node
		To   string `json:"to"`   // base relation
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.From == "" || req.To == "" {
		return nil, badRequest("walk needs from and to")
	}
	return s.withSession(r, func(sess *Session) (any, error) {
		if err := sess.tool.Walk(ctx, req.From, req.To); err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil
	})
}

func (s *Server) handleChase(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		Column string `json:"column"` // "Children.fid"
		Value  string `json:"value"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Column == "" {
		return nil, badRequest("chase needs column and value")
	}
	return s.withSession(r, func(sess *Session) (any, error) {
		if err := sess.tool.Chase(ctx, req.Column, value.Parse(req.Value)); err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil
	})
}

func (s *Server) handleFilter(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		Kind string `json:"kind"` // "source" or "target"
		Pred string `json:"pred"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	return s.withSession(r, func(sess *Session) (any, error) {
		p, err := parsePred(req.Pred)
		if err != nil {
			return nil, err
		}
		switch req.Kind {
		case "source":
			err = sess.tool.AddSourceFilter(ctx, p)
		case "target":
			err = sess.tool.AddTargetFilter(ctx, p)
		default:
			return nil, badRequest("filter kind must be source or target")
		}
		if err != nil {
			return nil, opError(err)
		}
		return workspacesBody(sess.tool), nil
	})
}

func parsePred(pred string) (expr.Expr, error) {
	p, err := expr.Parse(strings.TrimSpace(pred))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return p, nil
}

func (s *Server) handleUse(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		Workspace int `json:"workspace"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	return s.withSession(r, func(sess *Session) (any, error) {
		if err := sess.tool.Use(req.Workspace); err != nil {
			return nil, notFound("%v", err)
		}
		return workspacesBody(sess.tool), nil
	})
}

func (s *Server) handleAccept(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		if err := sess.tool.Confirm(); err != nil {
			return nil, opError(err)
		}
		return map[string]any{"accepted": len(sess.tool.Accepted())}, nil
	})
}

func (s *Server) handleUndo(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		if err := sess.tool.Undo(); err != nil {
			return nil, badRequest("%v", err)
		}
		return workspacesBody(sess.tool), nil
	})
}

// handleAddRow appends a tuple to a source relation. The mutation
// bumps the relation's version, so subsequent D(G) computations see a
// different content fingerprint and bypass stale cache entries.
func (s *Server) handleAddRow(ctx context.Context, r *http.Request) (any, error) {
	var req struct {
		Relation string   `json:"relation"`
		Values   []string `json:"values"`
	}
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	return s.withSession(r, func(sess *Session) (any, error) {
		rel := sess.in.Relation(req.Relation)
		if rel == nil {
			return nil, notFound("no relation %q", req.Relation)
		}
		if len(req.Values) != rel.Scheme().Arity() {
			return nil, badRequest("relation %s has arity %d, got %d values",
				req.Relation, rel.Scheme().Arity(), len(req.Values))
		}
		rel.AddRow(req.Values...)
		return map[string]any{
			"relation": req.Relation,
			"tuples":   rel.Len(),
			"version":  rel.Version(),
		}, nil
	})
}

func (s *Server) handleWorkspaces(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		return workspacesBody(sess.tool), nil
	})
}

// handleIllustration renders the active workspace's current
// illustration (maintained incrementally by the operators).
func (s *Server) handleIllustration(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		w := sess.tool.Active()
		if w == nil {
			return nil, badRequest("no active workspace")
		}
		return map[string]any{
			"mapping":  w.Mapping.Name,
			"examples": len(w.Illustration.Examples),
			"text":     render.Illustration(w.Illustration, paperdb.Abbrev()),
		}, nil
	})
}

// handleExamples recomputes the full example set of the active mapping
// from D(G). Unlike the incrementally-maintained illustration this
// goes through fd.Compute, so repeated calls are served by the D(G)
// cache until the instance changes.
func (s *Server) handleExamples(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		w := sess.tool.Active()
		if w == nil {
			return nil, badRequest("no active workspace")
		}
		dg, err := w.Mapping.DG(ctx, sess.in)
		if err != nil {
			return nil, err
		}
		il, err := core.ExamplesOn(ctx, w.Mapping, sess.in, dg)
		if err != nil {
			return nil, opError(err)
		}
		return map[string]any{
			"mapping":      w.Mapping.Name,
			"associations": dg.Len(),
			"examples":     len(il.Examples),
			"text":         render.Illustration(il, paperdb.Abbrev()),
		}, nil
	})
}

func (s *Server) handleView(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		view, err := sess.tool.TargetView(ctx)
		if err != nil {
			return nil, err
		}
		rows := make([][]string, 0, view.Len())
		for _, t := range view.Tuples() {
			row := make([]string, 0, view.Scheme().Arity())
			for i := 0; i < view.Scheme().Arity(); i++ {
				row = append(row, fmt.Sprint(t.At(i)))
			}
			rows = append(rows, row)
		}
		return map[string]any{
			"target": view.Name,
			"scheme": view.Scheme().Names(),
			"rows":   rows,
			"text":   render.Table(view, render.Options{Unqualify: true}),
		}, nil
	})
}

func (s *Server) handleStatus(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		return map[string]any{
			"status": sess.tool.TargetStatus(),
			"oplog":  sess.tool.OpLogString(),
		}, nil
	})
}
