package serve

import (
	"context"
	"net/http"
	"strings"

	"clio/internal/core"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/paperdb"
	"clio/internal/render"
	"clio/internal/schema"
	"clio/internal/workspace"
)

// routes wires every endpoint onto the mux. State-changing session
// endpoints go through opHandler, which dispatches via applyOp and
// journals the operation — the same dispatcher boot-time replay uses.
func (s *Server) routes() {
	// healthz answers 503 while draining so a load balancer stops
	// routing before in-flight requests finish and connections close.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Operational endpoints bypass the admission gate: a saturated or
	// misbehaving server is exactly when scrapes and trace inspection
	// must still answer.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraceIndex)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	s.mux.Handle("GET /api/sessions/{id}/explain", s.handle("explain", s.handleExplain))
	s.mux.Handle("GET /api/stats", s.handle("stats", s.handleStats))
	s.mux.Handle("POST /api/sessions", s.handle("session_create", s.handleCreateSession))
	s.mux.Handle("GET /api/sessions", s.handle("session_list", s.handleListSessions))
	s.mux.Handle("GET /api/sessions/archived", s.handle("session_archived", s.handleArchivedSessions))
	s.mux.Handle("DELETE /api/sessions/{id}", s.handle("session_delete", s.handleDeleteSession))
	s.mux.Handle("POST /api/sessions/{id}/resurrect", s.handle("session_resurrect", s.handleResurrect))
	for _, op := range []string{"corr", "walk", "chase", "filter", "use", "accept", "undo", "rows"} {
		s.mux.Handle("POST /api/sessions/{id}/"+op, s.handle(op, s.opHandler(op)))
	}
	s.mux.Handle("GET /api/sessions/{id}/workspaces", s.handle("workspaces", s.handleWorkspaces))
	s.mux.Handle("GET /api/sessions/{id}/illustration", s.handle("illustration", s.handleIllustration))
	s.mux.Handle("GET /api/sessions/{id}/examples", s.handle("examples", s.handleExamples))
	s.mux.Handle("GET /api/sessions/{id}/view", s.handle("view", s.handleView))
	s.mux.Handle("GET /api/sessions/{id}/watch", s.handle("watch", s.handleWatch))
	s.mux.Handle("GET /api/sessions/{id}/status", s.handle("status", s.handleStatus))
}

// opHandler serves one state-changing session operation: read the
// args, apply them under the session lock, and journal the op verbatim
// on success (failed ops are never journaled — replay re-executes only
// acknowledged work).
func (s *Server) opHandler(op string) handlerFunc {
	return func(ctx context.Context, r *http.Request) (any, error) {
		args, err := readArgs(r)
		if err != nil {
			return nil, err
		}
		return s.withSession(r, func(sess *Session) (any, error) {
			out, err := s.applyOp(ctx, sess, op, args)
			if err != nil {
				return nil, err
			}
			sess.journal.Append(workspace.JournalRecord{Kind: "op", Op: op, Args: args})
			s.maybeSnapshot(sess)
			s.publishWatch(ctx, sess, op)
			return out, nil
		})
	}
}

// parseTargetSpec parses "Name(attr, attr, ...)".
func parseTargetSpec(spec string) (*schema.Relation, error) {
	open := strings.IndexByte(spec, '(')
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return nil, badRequest("bad target spec %q (want Name(attr, ...))", spec)
	}
	name := strings.TrimSpace(spec[:open])
	var attrs []schema.Attribute
	for _, a := range strings.Split(spec[open+1:len(spec)-1], ",") {
		if a = strings.TrimSpace(a); a != "" {
			attrs = append(attrs, schema.Attribute{Name: a})
		}
	}
	if name == "" || len(attrs) == 0 {
		return nil, badRequest("bad target spec %q (want Name(attr, ...))", spec)
	}
	return schema.NewRelation(name, attrs...), nil
}

func (s *Server) handleCreateSession(ctx context.Context, r *http.Request) (any, error) {
	args, err := readArgs(r)
	if err != nil {
		return nil, err
	}
	sess := s.newSession()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	out, err := s.initSession(ctx, sess, args)
	if err != nil {
		s.dropSession(sess.ID)
		return nil, err
	}
	if s.cfg.JournalDir != "" {
		sess.journal = workspace.OpenJournal(s.cfg.JournalDir, sess.ID, s.cfg.journalOptions())
		sess.journal.Append(workspace.JournalRecord{Kind: "create", Args: args})
	}
	return out, nil
}

func (s *Server) handleListSessions(ctx context.Context, r *http.Request) (any, error) {
	return map[string]any{"sessions": s.sessionIDs()}, nil
}

func (s *Server) handleDeleteSession(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	s.dropSession(id)
	// Delete the journal too: there is nothing left to replay.
	sess.mu.Lock()
	sess.journal.Remove()
	sess.journal = nil
	sess.mu.Unlock()
	return map[string]string{"deleted": id}, nil
}

func (s *Server) handleStats(ctx context.Context, r *http.Request) (any, error) {
	return map[string]any{
		"sessions":          len(s.sessionIDs()),
		"sessions_archived": len(s.archivedIDs()),
		"cache_entries":     fd.CacheLen(),
		"cache_capacity":    fd.CacheCapacity(),
		"in_flight":         gInFlight.Value(),
		"requests":          cRequests.Value(),
		"throttled":         cThrottled.Value(),
		"session_throttled": cSessionThrottled.Value(),
		"expired":           cExpired.Value(),
		"resurrected":       cResurrected.Value(),
	}, nil
}

// withSession resolves the session and runs f under the session lock.
// A tombstoned session (idle-expired between lookup and lock) answers
// 404 like any other missing session.
func (s *Server) withSession(r *http.Request, f func(sess *Session) (any, error)) (any, error) {
	sess, err := s.session(r)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gone {
		return nil, notFound("no session %q", sess.ID)
	}
	if sess.tool == nil {
		return nil, badRequest("session %s has no tool", sess.ID)
	}
	sess.touch()
	return f(sess)
}

// workspacesBody is the canonical response after operators that
// replace the workspace set.
func workspacesBody(tool *workspace.Tool) map[string]any {
	act := tool.Active()
	var list []map[string]any
	for _, w := range tool.Workspaces() {
		list = append(list, map[string]any{
			"id":     w.ID,
			"note":   w.Note,
			"rank":   w.Rank,
			"nodes":  w.Mapping.Graph.Nodes(),
			"active": w == act,
		})
	}
	body := map[string]any{"workspaces": list}
	if act != nil {
		body["active"] = act.ID
	}
	return body
}

func parsePred(pred string) (expr.Expr, error) {
	p, err := expr.Parse(strings.TrimSpace(pred))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return p, nil
}

func (s *Server) handleWorkspaces(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		return workspacesBody(sess.tool), nil
	})
}

// handleIllustration renders the active workspace's current
// illustration (maintained incrementally by the operators).
func (s *Server) handleIllustration(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		w := sess.tool.Active()
		if w == nil {
			return nil, badRequest("no active workspace")
		}
		return map[string]any{
			"mapping":  w.Mapping.Name,
			"examples": len(w.Illustration.Examples),
			"text":     render.Illustration(w.Illustration, paperdb.Abbrev()),
		}, nil
	})
}

// handleExamples recomputes the full example set of the active mapping
// from D(G). Unlike the incrementally-maintained illustration this
// goes through fd.Compute, so repeated calls are served by the D(G)
// cache until the instance changes.
func (s *Server) handleExamples(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		w := sess.tool.Active()
		if w == nil {
			return nil, badRequest("no active workspace")
		}
		dg, err := w.Mapping.DG(ctx, sess.in)
		if err != nil {
			return nil, opError(err)
		}
		il, err := core.ExamplesOn(ctx, w.Mapping, sess.in, dg)
		if err != nil {
			return nil, opError(err)
		}
		return map[string]any{
			"mapping":      w.Mapping.Name,
			"associations": dg.Len(),
			"examples":     len(il.Examples),
			"text":         render.Illustration(il, paperdb.Abbrev()),
		}, nil
	})
}

func (s *Server) handleView(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		view, err := sess.tool.TargetView(ctx)
		if err != nil {
			return nil, opError(err)
		}
		rows := renderRows(view)
		return map[string]any{
			"target": view.Name,
			"scheme": view.Scheme().Names(),
			"rows":   rows,
			"text":   render.Table(view, render.Options{Unqualify: true}),
		}, nil
	})
}

func (s *Server) handleStatus(ctx context.Context, r *http.Request) (any, error) {
	return s.withSession(r, func(sess *Session) (any, error) {
		return map[string]any{
			"status": sess.tool.TargetStatus(),
			"oplog":  sess.tool.OpLogString(),
		}, nil
	})
}
