package discovery

import (
	"context"
	"testing"

	"clio/internal/fault"
	"clio/internal/value"
)

// An injected mining fault must degrade BuildKnowledge to declared
// constraints only — never fail the caller — and mining must resume
// once the point is exhausted.
func TestChaosMiningDegradesToDeclared(t *testing.T) {
	in := miniPaperInstance()
	declared := BuildKnowledge(context.Background(), in, false, 1.0)
	mined := BuildKnowledge(context.Background(), in, true, 1.0)
	if len(mined.Edges()) <= len(declared.Edges()) {
		t.Fatalf("precondition: mining should add edges (declared %d, mined %d)",
			len(declared.Edges()), len(mined.Edges()))
	}

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("discovery.mine_inds", fault.Spec{Mode: fault.ModeError, Times: 1})

	degraded := BuildKnowledge(context.Background(), in, true, 1.0)
	if len(degraded.Edges()) != len(declared.Edges()) {
		t.Fatalf("degraded knowledge has %d edges, want declared-only %d",
			len(degraded.Edges()), len(declared.Edges()))
	}
	if fault.Fired("discovery.mine_inds") != 1 {
		t.Fatalf("mine point fired %d times, want 1", fault.Fired("discovery.mine_inds"))
	}
	retry := BuildKnowledge(context.Background(), in, true, 1.0)
	if len(retry.Edges()) != len(mined.Edges()) {
		t.Fatalf("mining did not resume: %d edges, want %d",
			len(retry.Edges()), len(mined.Edges()))
	}
}

// A value-index build fault must degrade to scan-on-demand lookups
// that answer identically to the healthy index.
func TestChaosValueIndexModeErrorFallsBackToScan(t *testing.T) {
	in := miniPaperInstance()
	healthy := BuildValueIndex(context.Background(), in)

	fault.Enable(1)
	defer fault.Disable()
	fault.Set("discovery.value_index", fault.Spec{Mode: fault.ModeError, Times: 1})

	degraded := BuildValueIndex(context.Background(), in)
	if fault.Fired("discovery.value_index") != 1 {
		t.Fatalf("index point fired %d times, want 1", fault.Fired("discovery.value_index"))
	}
	probes := []value.Value{
		value.String("p00"),      // appears in three relations
		value.String("555-0101"), // PhoneDir only
		value.String("absent"),   // nowhere
		value.Null,               // no occurrences by definition
	}
	for _, v := range probes {
		want := healthy.Occurrences(v)
		got := degraded.Occurrences(v)
		if len(got) != len(want) {
			t.Fatalf("value %v: degraded hits %v, healthy %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("value %v: degraded hit %v, healthy %v", v, got[i], want[i])
			}
		}
	}
	// Exhausted point: the next build indexes normally again.
	rebuilt := BuildValueIndex(context.Background(), in)
	if rebuilt.scanFallback != nil {
		t.Fatal("rebuild after exhausted fault still degraded")
	}
}
