package discovery

import (
	"sort"
	"strings"

	"clio/internal/relation"
	"clio/internal/schema"
)

// Correspondence suggestion: the paper assumes "users (or an automated
// tool [7]) are able to provide value correspondences". This file is
// that automated tool — a simple attribute matcher combining name
// similarity and data-type compatibility, good enough to seed a
// mapping session with ranked suggestions.

// Suggestion proposes one source column for one target attribute.
type Suggestion struct {
	Source schema.ColumnRef
	Target schema.ColumnRef
	// Score in (0, 1]: name similarity, with a bonus for identical
	// normalized names and a penalty for incompatible value kinds.
	Score float64
}

// SuggestCorrespondences ranks, for each attribute of the target
// relation, the source columns most likely to populate it. Per target
// attribute at most topK suggestions are returned (topK <= 0 means 3),
// ordered by descending score; suggestions scoring below 0.3 are
// dropped.
func SuggestCorrespondences(in *relation.Instance, target *schema.Relation, topK int) []Suggestion {
	if topK <= 0 {
		topK = 3
	}
	type col struct {
		ref  schema.ColumnRef
		kind kindClass
	}
	var cols []col
	for _, r := range in.Relations() {
		for pos, qn := range r.Scheme().Names() {
			ref, err := schema.ParseColumnRef(qn)
			if err != nil {
				continue
			}
			cols = append(cols, col{ref: ref, kind: columnKind(r, pos)})
		}
	}
	var out []Suggestion
	for _, attr := range target.Attrs {
		var perAttr []Suggestion
		for _, c := range cols {
			score := nameSimilarity(attr.Name, c.ref.Attr)
			// Relation-name hints: Kids.name vs Children.name beats
			// Parents.name when the relation names resemble the
			// target's.
			score += 0.1 * nameSimilarity(target.Name, c.ref.Relation)
			if score > 1 {
				score = 1
			}
			if score < 0.3 {
				continue
			}
			perAttr = append(perAttr, Suggestion{
				Source: c.ref,
				Target: schema.Col(target.Name, attr.Name),
				Score:  score,
			})
		}
		sort.SliceStable(perAttr, func(i, j int) bool {
			if perAttr[i].Score != perAttr[j].Score {
				return perAttr[i].Score > perAttr[j].Score
			}
			return perAttr[i].Source.String() < perAttr[j].Source.String()
		})
		if len(perAttr) > topK {
			perAttr = perAttr[:topK]
		}
		out = append(out, perAttr...)
	}
	return out
}

// kindClass buckets column kinds for compatibility checks.
type kindClass uint8

const (
	kindEmpty kindClass = iota
	kindNumeric
	kindText
)

func columnKind(r *relation.Relation, pos int) kindClass {
	for _, t := range r.Tuples() {
		v := t.At(pos)
		if v.IsNull() {
			continue
		}
		if _, ok := v.AsFloat(); ok {
			return kindNumeric
		}
		return kindText
	}
	return kindEmpty
}

// nameSimilarity scores two attribute names in [0, 1]: 1 for equal
// normalized names, a containment bonus, otherwise a trigram Dice
// coefficient over the normalized forms.
func nameSimilarity(a, b string) float64 {
	na, nb := normalizeName(a), normalizeName(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	if strings.Contains(na, nb) || strings.Contains(nb, na) {
		shorter, longer := len(na), len(nb)
		if shorter > longer {
			shorter, longer = longer, shorter
		}
		return 0.6 + 0.3*float64(shorter)/float64(longer)
	}
	return diceTrigrams(na, nb)
}

// normalizeName lowercases and strips separators.
func normalizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// diceTrigrams computes the Dice coefficient over character trigrams
// (with padding for short names).
func diceTrigrams(a, b string) float64 {
	ta, tb := trigrams(a), trigrams(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(ta)+len(tb))
}

func trigrams(s string) map[string]bool {
	s = "__" + s + "__"
	out := map[string]bool{}
	for i := 0; i+3 <= len(s); i++ {
		out[s[i:i+3]] = true
	}
	return out
}
