package discovery

import (
	"context"
	"testing"

	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// miniPaperInstance builds a slice of the paper's source: Children
// referencing Parents via mid/fid, PhoneDir sharing IDs with Parents.
func miniPaperInstance() *relation.Instance {
	sch := schema.NewDatabase()
	sch.MustAddRelation(schema.NewRelation("Children",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "mid", Type: value.KindString},
		schema.Attribute{Name: "fid", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("Parents",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
	))
	sch.MustAddRelation(schema.NewRelation("PhoneDir",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "number", Type: value.KindString},
	))
	sch.AddForeignKey("mid_fk", "Children", []string{"mid"}, "Parents", []string{"ID"})
	sch.AddForeignKey("fid_fk", "Children", []string{"fid"}, "Parents", []string{"ID"})
	in := relation.NewInstance(sch)
	c := in.NewRelationFor("Children")
	c.AddRow("c01", "p00", "p01")
	c.AddRow("c02", "p02", "p03")
	c.AddRow("c04", "p00", "-")
	c.AddRow("c05", "p04", "-") // mother p04 has no phone
	in.MustAdd(c)
	p := in.NewRelationFor("Parents")
	p.AddRow("p00", "IBM")
	p.AddRow("p01", "UofT")
	p.AddRow("p02", "Acta")
	p.AddRow("p03", "IBM")
	p.AddRow("p04", "Acta")
	in.MustAdd(p)
	ph := in.NewRelationFor("PhoneDir")
	ph.AddRow("p00", "555-0100")
	ph.AddRow("p01", "555-0101")
	ph.AddRow("p02", "555-0102")
	in.MustAdd(ph)
	return in
}

func TestProfileColumn(t *testing.T) {
	in := miniPaperInstance()
	c := in.Relation("Children")
	id := ProfileColumn(c, "Children.ID")
	if !id.Unique || id.Distinct != 4 || id.Nulls != 0 || id.Rows != 4 {
		t.Errorf("ID stats = %+v", id)
	}
	fid := ProfileColumn(c, "Children.fid")
	if fid.Unique || fid.Nulls != 2 || fid.Distinct != 2 {
		t.Errorf("fid stats = %+v", fid)
	}
	mid := ProfileColumn(c, "Children.mid")
	if mid.Unique || mid.Distinct != 3 {
		t.Errorf("mid stats = %+v (p00 repeats)", mid)
	}
	// Missing column: zero stats.
	if got := ProfileColumn(c, "Children.nope"); got.Distinct != 0 || got.Unique {
		t.Errorf("missing column stats = %+v", got)
	}
}

func TestProfile(t *testing.T) {
	in := miniPaperInstance()
	stats := Profile(in)
	if len(stats) != 3+2+2 {
		t.Fatalf("profile count = %d", len(stats))
	}
	byName := map[string]ColumnStats{}
	for _, st := range stats {
		byName[st.Column.String()] = st
	}
	if !byName["Parents.ID"].Unique {
		t.Error("Parents.ID should be unique")
	}
	if byName["Parents.affiliation"].Unique {
		t.Error("affiliation repeats (IBM)")
	}
}

func TestDiscoverINDs(t *testing.T) {
	in := miniPaperInstance()
	inds := DiscoverINDs(context.Background(), in, 1.0)
	has := func(from, to string) bool {
		for _, ind := range inds {
			if ind.From.String() == from && ind.To.String() == to && ind.Overlap == 1 {
				return true
			}
		}
		return false
	}
	// The two FKs are discoverable from data alone.
	if !has("Children.mid", "Parents.ID") {
		t.Error("mid ⊆ Parents.ID not discovered")
	}
	if !has("Children.fid", "Parents.ID") {
		t.Error("fid ⊆ Parents.ID not discovered")
	}
	// PhoneDir.ID ⊆ Parents.ID (every phone belongs to a parent).
	if !has("PhoneDir.ID", "Parents.ID") {
		t.Error("PhoneDir.ID ⊆ Parents.ID not discovered")
	}
	// But not the reverse (parents p03, p04 lack phones).
	if has("Parents.ID", "PhoneDir.ID") {
		t.Error("Parents.ID ⊆ PhoneDir.ID should not hold")
	}
	// With a lower threshold the reverse appears as partial overlap.
	partial := DiscoverINDs(context.Background(), in, 0.4)
	found := false
	for _, ind := range partial {
		if ind.From.String() == "Parents.ID" && ind.To.String() == "PhoneDir.ID" {
			found = true
			if ind.Overlap != 0.6 {
				t.Errorf("overlap = %v, want 0.6", ind.Overlap)
			}
		}
	}
	if !found {
		t.Error("partial IND not found at threshold 0.4")
	}
	// Ordering: full-overlap INDs come first.
	for i := 1; i < len(partial); i++ {
		if partial[i-1].Overlap < partial[i].Overlap {
			t.Error("INDs not sorted by overlap")
		}
	}
}

func TestProposeForeignKeys(t *testing.T) {
	in := miniPaperInstance()
	fks := ProposeForeignKeys(in, DiscoverINDs(context.Background(), in, 1.0))
	want := map[string]bool{
		"Children.mid->Parents.ID": false,
		"Children.fid->Parents.ID": false,
		"PhoneDir.ID->Parents.ID":  false,
	}
	for _, fk := range fks {
		k := fk.FromRelation + "." + fk.FromAttrs[0] + "->" + fk.ToRelation + "." + fk.ToAttrs[0]
		if _, ok := want[k]; ok {
			want[k] = true
		}
		// All proposals must target a unique column.
		if fk.ToRelation != "Parents" && fk.ToRelation != "Children" && fk.ToRelation != "PhoneDir" {
			t.Errorf("unexpected proposal: %v", fk)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("expected FK proposal %s", k)
		}
	}
}

func TestValueIndex(t *testing.T) {
	in := miniPaperInstance()
	ix := BuildValueIndex(context.Background(), in)
	occ := ix.Occurrences(value.String("p00"))
	// p00 appears in Children.mid (2×), Parents.ID (1×), PhoneDir.ID (1×).
	if len(occ) != 3 {
		t.Fatalf("occurrences = %v", occ)
	}
	counts := map[string]int{}
	for _, o := range occ {
		counts[o.Column.String()] = o.Count
	}
	if counts["Children.mid"] != 2 || counts["Parents.ID"] != 1 || counts["PhoneDir.ID"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if got := ix.Occurrences(value.Null); got != nil {
		t.Error("null should have no occurrences")
	}
	if got := ix.Occurrences(value.String("zzz")); len(got) != 0 {
		t.Error("absent value should have no occurrences")
	}
}

func TestOccurrencesScanAgreesWithIndex(t *testing.T) {
	in := miniPaperInstance()
	ix := BuildValueIndex(context.Background(), in)
	for _, v := range []value.Value{
		value.String("p00"), value.String("p02"), value.String("c01"),
		value.String("IBM"), value.String("zzz"), value.Null,
	} {
		a := ix.Occurrences(v)
		b := OccurrencesScan(in, v)
		if len(a) != len(b) {
			t.Fatalf("value %v: index %v vs scan %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("value %v: occurrence %d differs: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
}

func TestKnowledgeEdges(t *testing.T) {
	in := miniPaperInstance()
	k := BuildKnowledge(context.Background(), in, false, 1.0)
	// Declared FKs only: two edges Children↔Parents.
	if len(k.Edges()) != 2 {
		t.Fatalf("edges = %v", k.Edges())
	}
	between := k.EdgesBetween("Children", "Parents")
	if len(between) != 2 {
		t.Errorf("EdgesBetween = %v", between)
	}
	// Symmetric lookup.
	if len(k.EdgesBetween("Parents", "Children")) != 2 {
		t.Error("EdgesBetween not symmetric")
	}
	if got := k.Neighbors("Children"); len(got) != 1 || got[0] != "Parents" {
		t.Errorf("Neighbors = %v", got)
	}
	// With mining, PhoneDir joins appear.
	km := BuildKnowledge(context.Background(), in, true, 1.0)
	if len(km.EdgesBetween("Parents", "PhoneDir")) == 0 {
		t.Error("mined PhoneDir edge missing")
	}
	// FK edges deduplicate mined duplicates: mid edge appears once.
	nMid := 0
	for _, e := range km.Edges() {
		if e.From.String() == "Children.mid" || e.To.String() == "Children.mid" {
			nMid++
		}
	}
	if nMid != 1 {
		t.Errorf("Children.mid edges = %d, want 1", nMid)
	}
	// And the surviving edge is the declared one.
	for _, e := range km.EdgesBetween("Children", "Parents") {
		if e.Source != SourceFK {
			t.Errorf("declared edge lost to mined: %v", e)
		}
	}
}

func TestUserEdges(t *testing.T) {
	k := NewKnowledge()
	k.AddUserEdge(schema.Col("A", "x"), schema.Col("B", "y"))
	k.AddUserEdge(schema.Col("B", "y"), schema.Col("A", "x")) // dup, reversed
	if len(k.Edges()) != 1 {
		t.Errorf("edges = %v", k.Edges())
	}
	if k.Edges()[0].Source != SourceUser {
		t.Error("source wrong")
	}
}

func TestPaths(t *testing.T) {
	in := miniPaperInstance()
	k := BuildKnowledge(context.Background(), in, true, 1.0)
	// Children → PhoneDir: two 2-edge paths via Parents (mid and fid).
	paths := k.Paths("Children", "PhoneDir", 3)
	if len(paths) < 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		rels := p.Relations("Children")
		if rels[0] != "Children" || rels[len(rels)-1] != "PhoneDir" {
			t.Errorf("path endpoints wrong: %v", rels)
		}
		seen := map[string]bool{}
		for _, r := range rels {
			if seen[r] {
				t.Errorf("path revisits %s: %v", r, rels)
			}
			seen[r] = true
		}
	}
	// Short bound prunes.
	if got := k.Paths("Children", "PhoneDir", 1); len(got) != 0 {
		t.Errorf("bounded paths = %v", got)
	}
	// Paths are sorted by length.
	for i := 1; i < len(paths); i++ {
		if len(paths[i-1]) > len(paths[i]) {
			t.Error("paths not sorted by length")
		}
	}
	// Unknown relations yield nothing.
	if got := k.Paths("Nope", "PhoneDir", 3); len(got) != 0 {
		t.Errorf("unknown start = %v", got)
	}
}

func TestPathRelationsAndString(t *testing.T) {
	e1 := JoinEdge{From: schema.Col("A", "x"), To: schema.Col("B", "y"), Source: SourceFK}
	e2 := JoinEdge{From: schema.Col("C", "z"), To: schema.Col("B", "y"), Source: SourceIND}
	p := Path{e1, e2}
	rels := p.Relations("A")
	if len(rels) != 3 || rels[1] != "B" || rels[2] != "C" {
		t.Errorf("Relations = %v", rels)
	}
	if p.String() == "" || e1.String() != "A.x = B.y [fk]" {
		t.Errorf("rendering wrong: %q", e1.String())
	}
}
