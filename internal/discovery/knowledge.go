package discovery

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
)

// EdgeSource records where a join-knowledge edge came from.
type EdgeSource string

// The knowledge-edge provenances: declared foreign keys, mined
// inclusion dependencies, and explicit user input.
const (
	SourceFK   EdgeSource = "fk"
	SourceIND  EdgeSource = "ind"
	SourceUser EdgeSource = "user"
)

// JoinEdge is one candidate way of joining two base relations: an
// equality between two columns. Clio's walk inference searches these.
type JoinEdge struct {
	From, To schema.ColumnRef
	Source   EdgeSource
}

// String renders the edge as From = To [source].
func (e JoinEdge) String() string {
	return fmt.Sprintf("%s = %s [%s]", e.From, e.To, e.Source)
}

// key normalizes the unordered column pair for deduplication.
func (e JoinEdge) key() string {
	a, b := e.From.String(), e.To.String()
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Knowledge is Clio's join-knowledge base: a multigraph over base
// relations whose (parallel) edges are candidate join conditions.
type Knowledge struct {
	edges []JoinEdge
	byRel map[string][]int // relation name → edge positions
}

// NewKnowledge creates an empty knowledge base.
func NewKnowledge() *Knowledge {
	return &Knowledge{byRel: map[string][]int{}}
}

// Add inserts a candidate join edge, deduplicating by unordered column
// pair (the first source wins: declared FKs are added before mined
// INDs by BuildKnowledge).
func (k *Knowledge) Add(e JoinEdge) {
	for _, prev := range k.edges {
		if prev.key() == e.key() {
			return
		}
	}
	pos := len(k.edges)
	k.edges = append(k.edges, e)
	k.byRel[e.From.Relation] = append(k.byRel[e.From.Relation], pos)
	if e.To.Relation != e.From.Relation {
		k.byRel[e.To.Relation] = append(k.byRel[e.To.Relation], pos)
	}
}

// AddUserEdge records an explicit user-provided join condition.
func (k *Knowledge) AddUserEdge(from, to schema.ColumnRef) {
	k.Add(JoinEdge{From: from, To: to, Source: SourceUser})
}

// Edges returns all candidate edges.
func (k *Knowledge) Edges() []JoinEdge { return k.edges }

// EdgesBetween returns the candidate joins between two base relations,
// in insertion order.
func (k *Knowledge) EdgesBetween(r1, r2 string) []JoinEdge {
	var out []JoinEdge
	for _, i := range k.byRel[r1] {
		e := k.edges[i]
		if e.From.Relation == r1 && e.To.Relation == r2 ||
			e.From.Relation == r2 && e.To.Relation == r1 {
			out = append(out, e)
		}
	}
	return out
}

// Neighbors returns the base relations joinable with rel, sorted.
func (k *Knowledge) Neighbors(rel string) []string {
	set := map[string]bool{}
	for _, i := range k.byRel[rel] {
		e := k.edges[i]
		if e.From.Relation == rel {
			set[e.To.Relation] = true
		}
		if e.To.Relation == rel {
			set[e.From.Relation] = true
		}
	}
	delete(set, rel)
	var out []string
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Path is a sequence of join edges leading from one base relation to
// another. Relations() returns the visited base relations in order.
type Path []JoinEdge

// Relations returns the base relations visited by the path, starting
// from the given relation.
func (p Path) Relations(start string) []string {
	out := []string{start}
	cur := start
	for _, e := range p {
		next := e.To.Relation
		if next == cur {
			next = e.From.Relation
		}
		out = append(out, next)
		cur = next
	}
	return out
}

// String renders the path as a chain of edges.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, e := range p {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ; ")
}

// Paths enumerates the simple paths (no base relation revisited) from
// one base relation to another, with at most maxEdges edges, choosing
// among parallel candidate edges. Deterministic order: shorter paths
// first, then lexicographic.
func (k *Knowledge) Paths(from, to string, maxEdges int) []Path {
	var out []Path
	var rec func(cur string, visited map[string]bool, acc Path)
	rec = func(cur string, visited map[string]bool, acc Path) {
		if cur == to && len(acc) > 0 {
			cp := make(Path, len(acc))
			copy(cp, acc)
			out = append(out, cp)
			return
		}
		if len(acc) >= maxEdges {
			return
		}
		for _, i := range k.byRel[cur] {
			e := k.edges[i]
			next := e.To.Relation
			if next == cur {
				next = e.From.Relation
			}
			if next == cur || visited[next] {
				continue
			}
			visited[next] = true
			rec(next, visited, append(acc, e))
			delete(visited, next)
		}
	}
	rec(from, map[string]bool{from: true}, nil)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// BuildKnowledge assembles the knowledge base for an instance:
// declared foreign keys first, then (optionally) mined inclusion
// dependencies with the given overlap threshold. Declared edges win
// deduplication against mined ones.
func BuildKnowledge(ctx context.Context, in *relation.Instance, mineINDs bool, minOverlap float64) *Knowledge {
	ctx, span := obs.StartSpan(ctx, "discovery.build_knowledge")
	defer span.End()
	span.SetBool("mine_inds", mineINDs)
	k := NewKnowledge()
	declared := 0
	if in.Schema != nil {
		for _, fk := range in.Schema.ForeignKs {
			// Unary FKs become single edges; composite FKs contribute
			// one edge per column pair (the conjunction is rebuilt by
			// the walk operator).
			for i := range fk.FromAttrs {
				k.Add(JoinEdge{
					From:   schema.Col(fk.FromRelation, fk.FromAttrs[i]),
					To:     schema.Col(fk.ToRelation, fk.ToAttrs[i]),
					Source: SourceFK,
				})
			}
		}
		declared = len(k.edges)
	}
	if mineINDs {
		for _, ind := range DiscoverINDs(ctx, in, minOverlap) {
			k.Add(JoinEdge{From: ind.From, To: ind.To, Source: SourceIND})
		}
	}
	span.SetInt("declared_edges", int64(declared))
	span.SetInt("edges", int64(len(k.edges)))
	return k
}
