package discovery

import (
	"testing"

	"clio/internal/schema"
	"clio/internal/value"
)

func kidsTarget() *schema.Relation {
	return schema.NewRelation("Kids",
		schema.Attribute{Name: "ID", Type: value.KindString},
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "affiliation", Type: value.KindString},
		schema.Attribute{Name: "contactPh", Type: value.KindString},
	)
}

func TestSuggestCorrespondences(t *testing.T) {
	in := miniPaperInstance()
	suggestions := SuggestCorrespondences(in, kidsTarget(), 3)
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	// The top suggestion for each target attribute.
	top := map[string]Suggestion{}
	for _, s := range suggestions {
		if prev, ok := top[s.Target.Attr]; !ok || s.Score > prev.Score {
			top[s.Target.Attr] = s
		}
	}
	// Kids.affiliation → Parents.affiliation (exact name).
	if got := top["affiliation"].Source.String(); got != "Parents.affiliation" {
		t.Errorf("affiliation suggestion = %s", got)
	}
	if top["affiliation"].Score < 0.9 {
		t.Errorf("exact match score = %v", top["affiliation"].Score)
	}
	// Kids.ID → some .ID column (Children.ID or Parents.ID).
	if got := top["ID"].Source.Attr; got != "ID" {
		t.Errorf("ID suggestion = %v", top["ID"])
	}
	// Ordering: scores descending within an attribute.
	seen := map[string]float64{}
	for _, s := range suggestions {
		if prev, ok := seen[s.Target.Attr]; ok && s.Score > prev {
			t.Errorf("suggestions for %s not sorted", s.Target.Attr)
		}
		seen[s.Target.Attr] = s.Score
	}
	// topK bounds output per attribute.
	one := SuggestCorrespondences(in, kidsTarget(), 1)
	perAttr := map[string]int{}
	for _, s := range one {
		perAttr[s.Target.Attr]++
	}
	for attr, n := range perAttr {
		if n > 1 {
			t.Errorf("attr %s got %d suggestions with topK=1", attr, n)
		}
	}
	// Default topK.
	if got := SuggestCorrespondences(in, kidsTarget(), 0); len(got) == 0 {
		t.Error("default topK should work")
	}
}

func TestNameSimilarity(t *testing.T) {
	cases := []struct {
		a, b string
		min  float64
		max  float64
	}{
		{"ID", "ID", 1, 1},
		{"contactPh", "contact_phone", 0.4, 1},
		{"affiliation", "affiliation", 1, 1},
		{"BusSchedule", "bus_schedule", 1, 1},
		{"name", "salary", 0, 0.29},
		{"", "x", 0, 0},
		{"FamilyIncome", "income", 0.6, 0.95},
	}
	for _, c := range cases {
		got := nameSimilarity(c.a, c.b)
		if got < c.min || got > c.max {
			t.Errorf("similarity(%q, %q) = %v, want in [%v, %v]", c.a, c.b, got, c.min, c.max)
		}
	}
	// Symmetry.
	if nameSimilarity("contactPh", "phone") != nameSimilarity("phone", "contactPh") {
		t.Error("similarity should be symmetric")
	}
}

func TestColumnKind(t *testing.T) {
	in := miniPaperInstance()
	c := in.Relation("Children")
	if columnKind(c, c.Scheme().Index("Children.ID")) != kindText {
		t.Error("ID should be text (c01 ...)")
	}
	p := in.Relation("Parents")
	if columnKind(p, p.Scheme().Index("Parents.affiliation")) != kindText {
		t.Error("affiliation should be text")
	}
}
