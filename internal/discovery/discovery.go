// Package discovery implements Clio's source-knowledge mining
// (Section 5.1: "knowledge of the source schema ... gathered from
// schema and constraint definitions and from mining the source
// data"): column profiling, candidate-key detection, inclusion-
// dependency discovery, foreign-key proposal, and the inverted value
// index that powers the data chase (Section 5.2).
package discovery

import (
	"context"
	"sort"
	"time"

	"clio/internal/fault"
	"clio/internal/obs"
	"clio/internal/relation"
	"clio/internal/schema"
	"clio/internal/value"
)

// Mining instrumentation: column-pair comparisons during IND
// discovery, mined dependencies, and value-index build stats.
var (
	cINDPairs      = obs.GetCounter("discovery.ind.pairs")
	cINDsMined     = obs.GetCounter("discovery.ind.mined")
	cIndexValues   = obs.GetCounter("discovery.value_index.values")
	cMineDegraded  = obs.GetCounter("discovery.ind.degraded")
	cIndexDegraded = obs.GetCounter("discovery.value_index.degraded")
	hINDMineNS     = obs.GetHistogram("discovery.ind.mine.ns")
	hIndexNS       = obs.GetHistogram("discovery.value_index.build.ns")
)

// ColumnStats summarizes one column of a relation instance.
type ColumnStats struct {
	Column   schema.ColumnRef
	Rows     int
	Nulls    int
	Distinct int
	// Unique reports whether the non-null values are pairwise distinct
	// and no nulls occur — a candidate key of the relation.
	Unique bool
}

// ProfileColumn computes statistics for one column (by qualified
// attribute name) of r.
func ProfileColumn(r *relation.Relation, qualified string) ColumnStats {
	ref, err := schema.ParseColumnRef(qualified)
	if err != nil {
		ref = schema.ColumnRef{Relation: r.Name, Attr: qualified}
	}
	st := ColumnStats{Column: ref, Rows: r.Len()}
	seen := map[string]struct{}{}
	pos := r.Scheme().Index(qualified)
	if pos < 0 {
		return st
	}
	for _, t := range r.Tuples() {
		v := t.At(pos)
		if v.IsNull() {
			st.Nulls++
			continue
		}
		seen[v.Key()] = struct{}{}
	}
	st.Distinct = len(seen)
	st.Unique = st.Nulls == 0 && st.Distinct == st.Rows && st.Rows > 0
	return st
}

// Profile computes statistics for every column of every relation in
// the instance, in deterministic order.
func Profile(in *relation.Instance) []ColumnStats {
	var out []ColumnStats
	for _, r := range in.Relations() {
		for _, qn := range r.Scheme().Names() {
			out = append(out, ProfileColumn(r, qn))
		}
	}
	return out
}

// IND is a unary inclusion dependency From ⊆ To: the fraction Overlap
// of From's distinct non-null values that appear in To.
type IND struct {
	From, To schema.ColumnRef
	// Overlap is in (0, 1]; 1 means full inclusion.
	Overlap float64
}

// DiscoverINDs finds inclusion dependencies between columns of
// different relations whose overlap is at least minOverlap
// (0 < minOverlap ≤ 1). Columns with no non-null values are skipped.
// Results are sorted by descending overlap, then lexicographically.
func DiscoverINDs(ctx context.Context, in *relation.Instance, minOverlap float64) []IND {
	_, span := obs.StartSpan(ctx, "discovery.mine_inds")
	defer span.End()
	// Mining is best-effort enrichment on top of declared constraints,
	// so an injected mining fault degrades to "nothing mined" — loudly,
	// via the span attribute and counter — rather than failing callers
	// that can proceed on declared knowledge alone.
	if err := fault.Inject("discovery.mine_inds"); err != nil {
		cMineDegraded.Inc()
		span.SetBool("degraded", true)
		return nil
	}
	start := time.Now()
	defer hINDMineNS.ObserveSince(start)
	type colSet struct {
		ref  schema.ColumnRef
		rel  string
		vals map[string]struct{}
	}
	var cols []colSet
	for _, r := range in.Relations() {
		for _, qn := range r.Scheme().Names() {
			ref, err := schema.ParseColumnRef(qn)
			if err != nil {
				continue
			}
			pos := r.Scheme().Index(qn)
			set := map[string]struct{}{}
			for _, t := range r.Tuples() {
				if v := t.At(pos); !v.IsNull() {
					set[v.Key()] = struct{}{}
				}
			}
			if len(set) > 0 {
				cols = append(cols, colSet{ref: ref, rel: r.Name, vals: set})
			}
		}
	}
	span.SetInt("columns", int64(len(cols)))
	var out []IND
	var pairs int64
	for i, from := range cols {
		for j, to := range cols {
			if i == j || from.rel == to.rel {
				continue
			}
			pairs++
			hits := 0
			for k := range from.vals {
				if _, ok := to.vals[k]; ok {
					hits++
				}
			}
			overlap := float64(hits) / float64(len(from.vals))
			if hits > 0 && overlap >= minOverlap {
				out = append(out, IND{From: from.ref, To: to.ref, Overlap: overlap})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		if out[i].From.String() != out[j].From.String() {
			return out[i].From.String() < out[j].From.String()
		}
		return out[i].To.String() < out[j].To.String()
	})
	cINDPairs.Add(pairs)
	cINDsMined.Add(int64(len(out)))
	span.SetInt("pairs", pairs)
	span.SetInt("inds", int64(len(out)))
	return out
}

// ProposeForeignKeys turns full-inclusion INDs whose target column is
// a candidate key into foreign-key proposals — the mined counterpart
// of declared constraints.
func ProposeForeignKeys(in *relation.Instance, inds []IND) []schema.ForeignKey {
	unique := map[string]bool{}
	for _, st := range Profile(in) {
		unique[st.Column.String()] = st.Unique
	}
	var out []schema.ForeignKey
	for _, ind := range inds {
		if ind.Overlap < 1 || !unique[ind.To.String()] {
			continue
		}
		out = append(out, schema.ForeignKey{
			Name:         "mined_" + ind.From.Relation + "_" + ind.From.Attr + "__" + ind.To.Relation + "_" + ind.To.Attr,
			FromRelation: ind.From.Relation,
			FromAttrs:    []string{ind.From.Attr},
			ToRelation:   ind.To.Relation,
			ToAttrs:      []string{ind.To.Attr},
		})
	}
	return out
}

// Occurrence records that a value appears in a column, with its
// multiplicity.
type Occurrence struct {
	Column schema.ColumnRef
	Count  int
}

// ValueIndex is an inverted index from values to the columns that
// contain them; it answers the data chase's "where else does this
// value occur?" in O(1) per value.
type ValueIndex struct {
	occ map[string][]Occurrence
	// scanFallback is set when the index build was degraded by an
	// injected fault: lookups fall back to a full instance scan, so
	// answers stay correct at reduced speed.
	scanFallback *relation.Instance
}

// BuildValueIndex indexes every non-null value of every column.
func BuildValueIndex(ctx context.Context, in *relation.Instance) *ValueIndex {
	_, span := obs.StartSpan(ctx, "discovery.build_value_index")
	defer span.End()
	// An injected build fault degrades the index to scan-on-demand:
	// Occurrences answers identically via OccurrencesScan, trading
	// speed for availability instead of returning wrong (empty) hits.
	if err := fault.Inject("discovery.value_index"); err != nil {
		cIndexDegraded.Inc()
		span.SetBool("degraded", true)
		return &ValueIndex{scanFallback: in}
	}
	start := time.Now()
	defer hIndexNS.ObserveSince(start)
	ix := &ValueIndex{occ: map[string][]Occurrence{}}
	for _, r := range in.Relations() {
		for pos, qn := range r.Scheme().Names() {
			ref, err := schema.ParseColumnRef(qn)
			if err != nil {
				continue
			}
			counts := map[string]int{}
			for _, t := range r.Tuples() {
				if v := t.At(pos); !v.IsNull() {
					counts[v.Key()]++
				}
			}
			for k, n := range counts {
				ix.occ[k] = append(ix.occ[k], Occurrence{Column: ref, Count: n})
			}
		}
	}
	for k := range ix.occ {
		occ := ix.occ[k]
		sort.Slice(occ, func(i, j int) bool {
			return occ[i].Column.String() < occ[j].Column.String()
		})
	}
	cIndexValues.Add(int64(len(ix.occ)))
	span.SetInt("values", int64(len(ix.occ)))
	span.SetInt("relations", int64(len(in.Relations())))
	return ix
}

// Occurrences returns the columns containing v, sorted by column name.
// Null has no occurrences.
func (ix *ValueIndex) Occurrences(v value.Value) []Occurrence {
	if v.IsNull() {
		return nil
	}
	if ix.scanFallback != nil {
		return OccurrencesScan(ix.scanFallback, v)
	}
	return ix.occ[v.Key()]
}

// OccurrencesScan finds the columns containing v by scanning the whole
// instance; the unindexed baseline for benchmark E5.
func OccurrencesScan(in *relation.Instance, v value.Value) []Occurrence {
	if v.IsNull() {
		return nil
	}
	var out []Occurrence
	for _, r := range in.Relations() {
		for pos, qn := range r.Scheme().Names() {
			ref, err := schema.ParseColumnRef(qn)
			if err != nil {
				continue
			}
			n := 0
			for _, t := range r.Tuples() {
				if t.At(pos).Equal(v) {
					n++
				}
			}
			if n > 0 {
				out = append(out, Occurrence{Column: ref, Count: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Column.String() < out[j].Column.String()
	})
	return out
}
