package clio

import (
	"clio/internal/core"
	"clio/internal/csvio"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/graph"
	"clio/internal/relation"
	"clio/internal/render"
	"clio/internal/schema"
	"clio/internal/sqlparse"
	"clio/internal/value"
	"clio/internal/workspace"
)

// Values and tuples.
type (
	// Value is a typed datum with SQL null semantics.
	Value = value.Value
	// Tri is a three-valued-logic truth value.
	Tri = value.Tri
	// Tuple assigns values to a scheme's attributes.
	Tuple = relation.Tuple
	// Scheme is an ordered set of qualified attribute names.
	Scheme = relation.Scheme
	// Relation is a named finite set of tuples.
	Relation = relation.Relation
	// Instance is a database instance conforming to a schema.
	Instance = relation.Instance
)

// Schema model.
type (
	// Database is a database schema with constraints.
	Database = schema.Database
	// RelationSchema describes one relation scheme.
	RelationSchema = schema.Relation
	// Attribute is one column of a relation scheme.
	Attribute = schema.Attribute
	// ColumnRef names a column as Relation.Attr.
	ColumnRef = schema.ColumnRef
	// ForeignKey is a referential constraint.
	ForeignKey = schema.ForeignKey
)

// Expressions and query graphs.
type (
	// Expr is a predicate or scalar expression over tuples.
	Expr = expr.Expr
	// QueryGraph is the paper's Definition 3.3 join graph.
	QueryGraph = graph.QueryGraph
)

// The core mapping model.
type (
	// Mapping is the paper's <G, V, C_S, C_T> (Definition 3.14).
	Mapping = core.Mapping
	// Correspondence is a value correspondence (Definition 3.1).
	Correspondence = core.Correspondence
	// Example is a mapping example (Definition 4.1).
	Example = core.Example
	// Illustration is a set of examples of a mapping.
	Illustration = core.Illustration
	// WalkOption is one data-walk alternative (Section 5.1).
	WalkOption = core.WalkOption
	// ChaseOption is one data-chase alternative (Section 5.2).
	ChaseOption = core.ChaseOption
	// Evolved is a continuously evolved illustration (Section 5.3).
	Evolved = core.Evolved
)

// Discovery and workspaces.
type (
	// Knowledge is the join-knowledge base searched by data walks.
	Knowledge = discovery.Knowledge
	// ValueIndex is the inverted index powering data chases.
	ValueIndex = discovery.ValueIndex
	// IND is a unary inclusion dependency.
	IND = discovery.IND
	// Tool is a Clio session: workspaces, knowledge, target view.
	Tool = workspace.Tool
	// Workspace holds one alternative mapping with its illustration.
	Workspace = workspace.Workspace
)

// Value constructors.
var (
	// Null is the SQL null value.
	Null = value.Null
	// StringValue constructs a string value.
	StringValue = value.String
	// IntValue constructs an integer value.
	IntValue = value.Int
	// FloatValue constructs a float value.
	FloatValue = value.Float
	// BoolValue constructs a boolean value.
	BoolValue = value.Bool
	// ParseValue guesses a value's kind from display text.
	ParseValue = value.Parse
)

// Schema constructors.
var (
	// NewDatabase creates an empty database schema.
	NewDatabase = schema.NewDatabase
	// NewRelationSchema creates a relation scheme.
	NewRelationSchema = schema.NewRelation
	// Col builds a ColumnRef.
	Col = schema.Col
	// NewInstance creates an empty instance of a schema.
	NewInstance = relation.NewInstance
	// NewScheme builds a tuple scheme from qualified names.
	NewScheme = relation.NewScheme
	// NewTuple builds a tuple over a scheme.
	NewTuple = relation.NewTuple
	// NewRelation creates an empty relation instance.
	NewRelation = relation.New
)

// Expressions.
var (
	// ParseExpr parses a SQL-flavoured expression.
	ParseExpr = expr.Parse
	// MustParseExpr is ParseExpr that panics on error.
	MustParseExpr = expr.MustParse
	// Equals builds the canonical join predicate l = r.
	Equals = expr.Equals
	// RegisterFunc adds a scalar function usable in correspondences.
	RegisterFunc = expr.RegisterFunc
	// IsStrong reports whether a predicate is strong over a scheme.
	IsStrong = expr.IsStrong
)

// Mappings, examples, and operators.
var (
	// NewMapping creates an empty mapping onto a target relation.
	NewMapping = core.NewMapping
	// NewQueryGraph creates an empty query graph.
	NewQueryGraph = graph.New
	// Identity builds an identity correspondence.
	Identity = core.Identity
	// CorrFromExpr builds a correspondence from an expression.
	CorrFromExpr = core.FromExpr
	// ParseCorrespondence parses "expr -> Rel.Attr".
	ParseCorrespondence = core.ParseCorrespondence
	// AllExamples builds the complete illustration of a mapping.
	AllExamples = core.AllExamples
	// SufficientIllustration selects a small sufficient illustration.
	SufficientIllustration = core.SufficientIllustration
	// Focus restricts an illustration to chosen focus tuples.
	Focus = core.Focus
	// DataWalk enumerates graph extensions to a known relation.
	DataWalk = core.DataWalk
	// DataChase extends the graph by following a data value.
	DataChase = core.DataChase
	// AddCorrespondence adds a correspondence, walking when needed.
	AddCorrespondence = core.AddCorrespondence
	// Evolve continuously evolves an illustration onto a new mapping.
	Evolve = core.Evolve
)

// Full disjunction.
var (
	// FullDisjunction computes D(G) for any connected query graph.
	FullDisjunction = fd.FullDisjunction
	// FullDisjunctionOuterJoin computes D(G) for tree graphs via full
	// outer joins.
	FullDisjunctionOuterJoin = fd.FullDisjunctionOuterJoin
	// ComputeDG picks the best D(G) algorithm for the graph.
	ComputeDG = fd.Compute
	// Coverage returns the nodes a data association covers.
	Coverage = fd.Coverage
	// CoverageTag abbreviates a coverage set ("CPPh").
	CoverageTag = fd.Tag
)

// Discovery.
var (
	// BuildKnowledge assembles join knowledge from constraints and
	// optional IND mining.
	BuildKnowledge = discovery.BuildKnowledge
	// BuildValueIndex builds the chase's inverted value index.
	BuildValueIndex = discovery.BuildValueIndex
	// DiscoverINDs mines inclusion dependencies from data.
	DiscoverINDs = discovery.DiscoverINDs
	// ProposeForeignKeys turns full INDs on keys into FK proposals.
	ProposeForeignKeys = discovery.ProposeForeignKeys
)

// Workspaces and IO.
var (
	// NewTool opens a Clio session over an instance and target.
	NewTool = workspace.New
	// LoadCSVDir loads a directory of CSV files as an instance.
	LoadCSVDir = csvio.LoadDir
	// SaveCSVDir writes an instance as CSV files.
	SaveCSVDir = csvio.SaveDir
	// FormatTable renders a relation as an ASCII table.
	FormatTable = render.Table
	// FormatIllustration renders an illustration as a table.
	FormatIllustration = render.Illustration
)

// RenderOptions controls FormatTable.
type RenderOptions = render.Options

// Mapping comparison and join-query representation.
type (
	// MappingDiff is the structural difference between two mappings.
	MappingDiff = core.MappingDiff
	// Distinguishing holds examples separating two mappings.
	Distinguishing = core.Distinguishing
	// JoinQuery is a join / outer-join expression tree.
	JoinQuery = core.JoinQuery
	// JQRel is a join-query leaf (one relation occurrence).
	JQRel = core.Rel
	// JQJoin is a join-query join node.
	JQJoin = core.JQJoin
	// EdgeAlternative is a relabeling alternative for a graph edge.
	EdgeAlternative = core.EdgeAlternative
)

// Comparison, extra operators, and the representation theorem.
var (
	// DiffMappings computes the structural difference of two mappings.
	DiffMappings = core.Diff
	// DistinguishingExamplesOf finds data separating two mappings.
	DistinguishingExamplesOf = core.DistinguishingExamples
	// RemoveNode undoes a walk/chase by dropping a leaf node.
	RemoveNode = core.RemoveNode
	// RelabelEdge swaps an edge's join condition for knowledge-base
	// alternatives.
	RelabelEdge = core.RelabelEdge
	// JoinRel builds a join-query leaf.
	JoinRel = core.NewRel
	// InnerQ, LeftQ, RightQ, FullQ build join-query nodes.
	InnerQ = core.Inner
	LeftQ  = core.Left
	RightQ = core.Right
	FullQ  = core.Full
	// RepresentJoinQuery compiles a join/outer-join query into term
	// mappings (the Section 3.4 representation).
	RepresentJoinQuery = core.RepresentJoinQuery
	// CombineMappings evaluates mappings and combines them by minimum
	// union.
	CombineMappings = core.CombineMappings
	// EvaluateJoinQuery evaluates a join query directly.
	EvaluateJoinQuery = core.EvaluateJoinQuery
)

// Persistence, incremental maintenance, sampling, and constraints.
var (
	// UnmarshalMapping reconstructs a mapping from its JSON document
	// (mappings marshal via their MarshalJSON method).
	UnmarshalMapping = core.UnmarshalMapping
	// EvolveFrom evolves an illustration reusing a cached D(G).
	EvolveFrom = core.EvolveFrom
	// EvolveOnDG evolves an illustration onto a precomputed D(G′).
	EvolveOnDG = core.EvolveOnDG
	// ExtendLeaf maintains D(G) incrementally under a leaf extension.
	ExtendLeaf = fd.ExtendLeaf
	// ComputeDGIncremental computes D(G′) reusing a previous D(G) when
	// possible.
	ComputeDGIncremental = fd.ComputeIncremental
	// SampleRelation takes a deterministic sample of a relation.
	SampleRelation = relation.Sample
	// SampleInstance samples every relation of an instance.
	SampleInstance = relation.SampleInstance
	// ApplyTargetConstraints derives C_T filters from declared target
	// NOT NULL constraints.
	ApplyTargetConstraints = core.ApplyTargetConstraints
	// CoverageAll computes coverage for every D(G) tuple in one pass.
	CoverageAll = fd.CoverageAll
)

// SQL import (the inverse of Mapping.ViewSQL).
var (
	// ParseSelect parses a CREATE VIEW / SELECT statement.
	ParseSelect = sqlparse.ParseSelect
	// ImportMapping parses a SELECT statement into an equivalent
	// mapping (INNER/LEFT join chains).
	ImportMapping = sqlparse.ImportMapping
	// ToJoinQuery converts a parsed statement into a JoinQuery for the
	// exact multi-mapping representation.
	ToJoinQuery = sqlparse.ToJoinQuery
)

// SQLQuery is a parsed SELECT statement.
type SQLQuery = sqlparse.Query

// Correspondence suggestion (the paper's automated-matcher substrate).
var (
	// SuggestCorrespondences ranks likely source→target attribute
	// matches by name similarity.
	SuggestCorrespondences = discovery.SuggestCorrespondences
)

// CorrespondenceSuggestion is one ranked source→target proposal.
type CorrespondenceSuggestion = discovery.Suggestion

// Narration and HTML reporting.
var (
	// ExplainMappingDiff narrates how two mappings differ.
	ExplainMappingDiff = core.ExplainDiff
	// WriteHTMLReport renders a session report as a standalone page.
	WriteHTMLReport = render.WriteHTML
)

// HTMLReport is the input to WriteHTMLReport.
type HTMLReport = render.HTMLReport
