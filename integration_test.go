package clio_test

// Whole-facade integration: an e-commerce mapping session driven
// exclusively through the public API — discovery, suggestions, tool
// workflow, SQL round-trip, persistence, diffing, evolution, and the
// HTML report. Doubles as executable documentation.

import (
	"context"
	"strings"
	"testing"

	"clio"
	"clio/internal/datagen"
)

func TestFullLibraryIntegration(t *testing.T) {
	in := datagen.ECommerce(datagen.ECommerceSpec{
		Customers: 15, Orders: 40, LinesPerOrder: 2, Products: 10,
		ShipRate: 0.5, Seed: 7,
	})

	// 1. Discovery: the declared FKs are also recoverable from data.
	inds := clio.DiscoverINDs(context.Background(), in, 1.0)
	fks := clio.ProposeForeignKeys(in, inds)
	foundOC := false
	for _, fk := range fks {
		if fk.FromRelation == "Orders" && fk.ToRelation == "Customers" {
			foundOC = true
		}
	}
	if !foundOC {
		t.Error("Orders→Customers FK not mined")
	}

	// 2. Suggestions seed the session.
	target := clio.NewRelationSchema("Report",
		clio.Attribute{Name: "oid"},
		clio.Attribute{Name: "name"},
		clio.Attribute{Name: "carrier"},
	)
	sugg := clio.SuggestCorrespondences(in, target, 1)
	var oidSrc string
	for _, s := range sugg {
		if s.Target.Attr == "oid" {
			oidSrc = s.Source.String()
		}
	}
	if !strings.HasSuffix(oidSrc, ".oid") {
		t.Errorf("oid suggestion = %q", oidSrc)
	}

	// 3. Build the mapping through the tool.
	tool := clio.NewTool(context.Background(), in, target, false)
	must(t, tool.Start("report"))
	must(t, tool.AddCorrespondence(context.Background(), clio.Identity("Orders.oid", clio.Col("Report", "oid"))))
	must(t, tool.AddCorrespondence(context.Background(), clio.Identity("Customers.name", clio.Col("Report", "name"))))
	must(t, tool.AddCorrespondence(context.Background(), clio.Identity("Shipments.carrier", clio.Col("Report", "carrier"))))
	must(t, tool.AddTargetFilter(context.Background(), clio.MustParseExpr("Report.oid IS NOT NULL")))
	m := tool.Active().Mapping
	must(t, m.Validate(in))

	// 4. Undo and redo the filter.
	must(t, tool.Undo())
	if len(tool.Active().Mapping.TargetFilters) != 0 {
		t.Error("undo failed")
	}
	must(t, tool.AddTargetFilter(context.Background(), clio.MustParseExpr("Report.oid IS NOT NULL")))
	m = tool.Active().Mapping

	// 5. The illustration is sufficient and explains itself.
	il := tool.Active().Illustration
	if ok, err := il.IsSufficient(in); err != nil || !ok {
		t.Errorf("illustration sufficiency: %v %v", ok, err)
	}
	if !strings.Contains(m.Explain(), "populates Report") {
		t.Error("explanation wrong")
	}

	// 6. SQL round-trip through the parser.
	root, ok := m.RequiredRoot()
	if !ok {
		t.Fatal("no required root")
	}
	sql, err := m.ViewSQL(root)
	must(t, err)
	back, err := clio.ImportMapping(sql, in, "")
	must(t, err)
	want, err := m.Evaluate(in)
	must(t, err)
	got, err := back.Evaluate(in)
	must(t, err)
	if !want.Distinct().EqualSet(got) {
		t.Error("SQL round-trip changed semantics")
	}

	// 7. JSON persistence round-trip.
	data, err := m.MarshalJSON()
	must(t, err)
	loaded, err := clio.UnmarshalMapping(data)
	must(t, err)
	if d := clio.DiffMappings(m, loaded); !d.Empty() {
		t.Errorf("persistence diff:\n%s", d)
	}

	// 8. Evolution after a programmatic walk keeps continuity.
	opts, err := clio.DataWalk(context.Background(), m, tool.Knowledge, "Orders", "OrderLines", 2)
	must(t, err)
	if len(opts) == 0 {
		t.Fatal("no walk to OrderLines")
	}
	ev, err := clio.Evolve(context.Background(), il, opts[0].Mapping, in)
	must(t, err)
	if ev.ContinuityRatio() != 1 {
		t.Errorf("continuity = %v", ev.ContinuityRatio())
	}

	// 9. HTML report.
	view, err := tool.TargetView(context.Background())
	must(t, err)
	var html strings.Builder
	must(t, clio.WriteHTMLReport(&html, clio.HTMLReport{
		Title: "integration", Mapping: m, Illustration: il, TargetView: view,
	}))
	if !strings.Contains(html.String(), "<title>integration</title>") {
		t.Error("HTML report wrong")
	}

	// 10. Representation theorem on this schema.
	q := clio.LeftQ(
		clio.JoinRel("Orders"), clio.JoinRel("Shipments"),
		"Orders", "Shipments", clio.Equals("Orders.oid", "Shipments.oid"))
	ms, err := clio.RepresentJoinQuery(q, in, "T")
	must(t, err)
	combined, err := clio.CombineMappings(in, ms)
	must(t, err)
	direct, err := clio.EvaluateJoinQuery(q, in)
	must(t, err)
	if combined.Len() != direct.Distinct().Len() {
		t.Errorf("representation sizes differ: %d vs %d", combined.Len(), direct.Distinct().Len())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
