#!/bin/sh
# serve_smoke.sh — start clio serve, drive a create/corr/walk/
# illustrate round-trip with curl, and verify a clean graceful
# shutdown. Part of the tier-1 gate (make serve-smoke).
set -eu

BIN=${1:-./clio.smoke}
ADDR=127.0.0.1:7641
BASE="http://$ADDR"
LOG=$(mktemp)
trap 'kill "$PID" 2>/dev/null; rm -f "$LOG" "$BIN"' EXIT

go build -o "$BIN" ./cmd/clio

"$BIN" serve -addr "$ADDR" -cache 32 >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up (max ~5s).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve-smoke: server did not come up" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

fail() {
    echo "serve-smoke: $1" >&2
    cat "$LOG" >&2
    exit 1
}

# Create a session on the paper database.
OUT=$(curl -sf -X POST "$BASE/api/sessions" \
    -d '{"source":"paper","name":"kids"}') || fail "session create failed"
case "$OUT" in *'"id"'*) ;; *) fail "no session id in: $OUT" ;; esac
SID=$(printf '%s' "$OUT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')

# Correspondence, then a data walk to PhoneDir.
curl -sf -X POST "$BASE/api/sessions/$SID/corr" \
    -d '{"spec":"Children.ID -> Kids.ID"}' >/dev/null || fail "corr failed"
OUT=$(curl -sf -X POST "$BASE/api/sessions/$SID/walk" \
    -d '{"from":"Children","to":"PhoneDir"}') || fail "walk failed"
case "$OUT" in *'"workspaces"'*) ;; *) fail "no workspaces in walk response: $OUT" ;; esac

# The illustration must mention the walked-to relation.
OUT=$(curl -sf "$BASE/api/sessions/$SID/illustration") || fail "illustration failed"
case "$OUT" in *PhoneDir*) ;; *) fail "illustration missing PhoneDir: $OUT" ;; esac

# Repeated example recomputation exercises the D(G) cache.
curl -sf "$BASE/api/sessions/$SID/examples" >/dev/null || fail "examples failed"
curl -sf "$BASE/api/sessions/$SID/examples" >/dev/null || fail "examples (cached) failed"
OUT=$(curl -sf "$BASE/api/stats") || fail "stats failed"
case "$OUT" in *'"cache_entries"'*) ;; *) fail "no cache stats: $OUT" ;; esac

# Graceful shutdown: SIGTERM must drain and exit zero.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        fail "server did not shut down after SIGTERM"
    fi
    sleep 0.1
done
wait "$PID" || fail "server exited non-zero"
trap 'rm -f "$LOG" "$BIN"' EXIT

echo "serve-smoke: ok"
