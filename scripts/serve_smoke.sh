#!/bin/sh
# serve_smoke.sh — start clio serve with a session journal, drive a
# create/corr/walk/illustrate round-trip with curl, kill -9 the server
# mid-session, verify the restarted server replays the session from
# the journal, and finally verify a clean graceful shutdown. Part of
# the tier-1 gate (make serve-smoke).
set -eu

BIN=${1:-./clio.smoke}
ADDR=127.0.0.1:7641
BASE="http://$ADDR"
LOG=$(mktemp)
JDIR=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null; rm -rf "$LOG" "$BIN" "$JDIR"' EXIT

go build -o "$BIN" ./cmd/clio

start_server() {
    # Extra args (lifecycle flags) pass through to clio serve.
    "$BIN" serve -addr "$ADDR" -cache 32 -journal-dir "$JDIR" "$@" >"$LOG" 2>&1 &
    PID=$!
    # Wait for the server to come up (max ~5s).
    i=0
    until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "serve-smoke: server did not come up" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
}

fail() {
    echo "serve-smoke: $1" >&2
    cat "$LOG" >&2
    exit 1
}

start_server

# Create a session on the paper database.
OUT=$(curl -sf -X POST "$BASE/api/sessions" \
    -d '{"source":"paper","name":"kids"}') || fail "session create failed"
case "$OUT" in *'"id"'*) ;; *) fail "no session id in: $OUT" ;; esac
SID=$(printf '%s' "$OUT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')

# Correspondence, then a data walk to PhoneDir.
curl -sf -X POST "$BASE/api/sessions/$SID/corr" \
    -d '{"spec":"Children.ID -> Kids.ID"}' >/dev/null || fail "corr failed"
OUT=$(curl -sf -X POST "$BASE/api/sessions/$SID/walk" \
    -d '{"from":"Children","to":"PhoneDir"}') || fail "walk failed"
case "$OUT" in *'"workspaces"'*) ;; *) fail "no workspaces in walk response: $OUT" ;; esac

# The illustration must mention the walked-to relation.
OUT=$(curl -sf "$BASE/api/sessions/$SID/illustration") || fail "illustration failed"
case "$OUT" in *PhoneDir*) ;; *) fail "illustration missing PhoneDir: $OUT" ;; esac
PRE_CRASH=$(curl -sf "$BASE/api/sessions/$SID/view") || fail "pre-crash view failed"

# Crash-safety: kill -9 the server mid-session; the journal must
# restore the session on the next boot with a byte-identical view.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
start_server

OUT=$(curl -sf "$BASE/api/sessions") || fail "session list after crash failed"
case "$OUT" in *"\"$SID\""*) ;; *) fail "session $SID not replayed after kill -9: $OUT" ;; esac
OUT=$(curl -sf "$BASE/api/sessions/$SID/illustration") || fail "replayed illustration failed"
case "$OUT" in *PhoneDir*) ;; *) fail "replayed illustration missing PhoneDir: $OUT" ;; esac
POST_CRASH=$(curl -sf "$BASE/api/sessions/$SID/view") || fail "post-crash view failed"
[ "$PRE_CRASH" = "$POST_CRASH" ] || fail "replayed target view differs from pre-crash view"

# The replayed session is live: more ops apply cleanly.
curl -sf -X POST "$BASE/api/sessions/$SID/chase" \
    -d '{"column":"Children.ID","value":"002"}' >/dev/null || fail "post-replay chase failed"

# Repeated example recomputation exercises the D(G) cache.
curl -sf "$BASE/api/sessions/$SID/examples" >/dev/null || fail "examples failed"
curl -sf "$BASE/api/sessions/$SID/examples" >/dev/null || fail "examples (cached) failed"
OUT=$(curl -sf "$BASE/api/stats") || fail "stats failed"
case "$OUT" in *'"cache_entries"'*) ;; *) fail "no cache stats: $OUT" ;; esac

# Observability plane. /metrics must speak Prometheus text exposition
# and carry the serve request counter incremented by the traffic above.
OUT=$(curl -sf "$BASE/metrics") || fail "metrics scrape failed"
case "$OUT" in
    *'# TYPE clio_serve_requests_total counter'*) ;;
    *) fail "metrics missing serve request counter: $OUT" ;;
esac
case "$OUT" in
    *'clio_serve_request_ns{quantile="0.99"}'*) ;;
    *) fail "metrics missing latency quantiles: $OUT" ;;
esac

# /statusz reports the server live (not draining) with cache stats and
# the cost-based planner's counters.
OUT=$(curl -sf "$BASE/statusz") || fail "statusz failed"
case "$OUT" in *'"draining": false'*) ;; *) fail "statusz not live: $OUT" ;; esac
case "$OUT" in *'"hit_ratio"'*) ;; *) fail "statusz missing cache block: $OUT" ;; esac
case "$OUT" in *'"planner"'*) ;; *) fail "statusz missing planner block: $OUT" ;; esac

# explain on the mapped session names the picked algorithm, the
# executed plan tree, and the planner block: chosen join order,
# per-step estimated rows, and stats freshness.
OUT=$(curl -sf "$BASE/api/sessions/$SID/explain") || fail "explain failed"
case "$OUT" in *'"algo"'*) ;; *) fail "explain missing algo: $OUT" ;; esac
case "$OUT" in *'"plan"'*) ;; *) fail "explain missing plan tree: $OUT" ;; esac
case "$OUT" in *'"planner"'*) ;; *) fail "explain missing planner block: $OUT" ;; esac
case "$OUT" in *'"order"'*) ;; *) fail "explain planner missing join order: $OUT" ;; esac
case "$OUT" in *'"est_rows"'*) ;; *) fail "explain planner missing est_rows: $OUT" ;; esac
case "$OUT" in *'"fresh"'*) ;; *) fail "explain planner missing stats freshness: $OUT" ;; esac

# Every response carries a trace ID, and that ID resolves in the
# retained-trace buffer.
TRACE=$(curl -sfD - -o /dev/null "$BASE/api/sessions/$SID/view" |
    tr -d '\r' | sed -n 's/^X-Clio-Trace: //p')
[ -n "$TRACE" ] || fail "view response carries no X-Clio-Trace header"
OUT=$(curl -sf "$BASE/debug/traces/$TRACE") || fail "trace lookup for $TRACE failed"
case "$OUT" in *"\"$TRACE\""*) ;; *) fail "retained trace does not echo its id: $OUT" ;; esac

# Session lifecycle: restart with snapshot compaction and a short idle
# TTL. Snapshots must bound the journal, idle expiry must tombstone the
# session into the archive, and resurrect must bring it back with a
# byte-identical view.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
start_server -snapshot-every 2 -idle-ttl 1s

# Four more ops: with snapshot interval 2, the journal at rest holds at
# most 3 records (create + snapshot + at most one trailing op).
for KID in 901 902 903 904; do
    curl -sf -X POST "$BASE/api/sessions/$SID/rows" \
        -d "{\"relation\":\"Children\",\"values\":[\"$KID\",\"Kid$KID\",\"9\",\"800\",\"801\",\"d9\"]}" \
        >/dev/null || fail "row insert $KID failed"
done
LINES=$(wc -l <"$JDIR/$SID.journal")
[ "$LINES" -le 3 ] || fail "journal holds $LINES records after snapshots, want <= 3"
PRE_EXPIRE=$(curl -sf "$BASE/api/sessions/$SID/view") || fail "pre-expire view failed"

# Leave the session idle past the TTL; the reaper must tombstone it.
i=0
while true; do
    OUT=$(curl -sf "$BASE/api/sessions") || fail "session list during expiry failed"
    case "$OUT" in
        *"\"$SID\""*) ;;
        *) break ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        fail "session $SID not expired after idle TTL: $OUT"
    fi
    sleep 0.1
done
[ -f "$JDIR/archive/$SID.journal" ] || fail "expired session journal not in archive"
OUT=$(curl -sf "$BASE/api/sessions/archived") || fail "archived list failed"
case "$OUT" in *"\"$SID\""*) ;; *) fail "session $SID missing from archive list: $OUT" ;; esac

# Resurrect: archived journal replays back to a live, identical session.
OUT=$(curl -sf -X POST "$BASE/api/sessions/$SID/resurrect") || fail "resurrect failed"
case "$OUT" in *'"resurrected"'*) ;; *) fail "no resurrected flag in: $OUT" ;; esac
POST_RESURRECT=$(curl -sf "$BASE/api/sessions/$SID/view") || fail "post-resurrect view failed"
[ "$PRE_EXPIRE" = "$POST_RESURRECT" ] || fail "resurrected target view differs from pre-expire view"

# Watch: a long-poll parked on the session must wake when a row edit
# lands, with an event carrying the edit's own trace ID and the rows it
# added to the view.
curl -sf "$BASE/api/sessions/$SID/watch?wait_ms=0" >/dev/null || fail "watch prime failed"
WATCH_OUT=$(mktemp)
curl -sf "$BASE/api/sessions/$SID/watch?after=0&wait_ms=8000" >"$WATCH_OUT" &
WATCH_PID=$!
sleep 0.3
ROWS_TRACE=$(curl -sfD - -o /dev/null -X POST "$BASE/api/sessions/$SID/rows" \
    -d '{"relation":"Children","values":["905","Kid905","9","800","801","d9"]}' |
    tr -d '\r' | sed -n 's/^X-Clio-Trace: //p')
[ -n "$ROWS_TRACE" ] || fail "rows response carries no X-Clio-Trace header"
wait "$WATCH_PID" || fail "watch long-poll failed"
OUT=$(cat "$WATCH_OUT")
rm -f "$WATCH_OUT"
case "$OUT" in *'"events"'*) ;; *) fail "watch response has no events: $OUT" ;; esac
case "$OUT" in *"\"$ROWS_TRACE\""*) ;; *) fail "watch event missing the edit's trace $ROWS_TRACE: $OUT" ;; esac
case "$OUT" in *'"added"'*) ;; *) fail "watch event reports no added rows: $OUT" ;; esac

# Capacity & degradation: a second server on its own port exercises the
# spill-vs-abort budget policy end to end — 413 without a spill dir,
# 200 with byte-identical results when spill absorbs the same pressure,
# and an orphan sweep after kill -9.
ADDR2=127.0.0.1:7642
BASE2="http://$ADDR2"
LOG2=$(mktemp)
SDIR=$(mktemp -d)
PID2=""
trap 'kill "$PID" "$PID2" 2>/dev/null; rm -rf "$LOG" "$LOG2" "$BIN" "$JDIR" "$SDIR"' EXIT

start_server2() {
    "$BIN" serve -addr "$ADDR2" -cache 32 "$@" >"$LOG2" 2>&1 &
    PID2=$!
    i=0
    until curl -sf "$BASE2/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "serve-smoke: capacity server did not come up" >&2
            cat "$LOG2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_server2() {
    kill "$PID2" 2>/dev/null || true
    wait "$PID2" 2>/dev/null || true
    PID2=""
}

new_session2() {
    OUT=$(curl -sf -X POST "$BASE2/api/sessions" \
        -d '{"source":"paper","name":"capacity"}') || fail "capacity session create failed"
    SID2=$(printf '%s' "$OUT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    [ -n "$SID2" ] || fail "no capacity session id in: $OUT"
}

# A mapping plus enough inserted rows that the walk's first full D(G)
# computation overflows the 128KB resident cap used in the spill leg
# (rows land before the walk, so the compute — not incremental
# maintenance — carries the pressure).
drive_capacity() {
    curl -sf -X POST "$BASE2/api/sessions/$SID2/corr" \
        -d '{"spec":"Children.ID -> Kids.ID"}' >/dev/null || fail "capacity corr failed"
    N=500
    while [ "$N" -lt 560 ]; do
        curl -sf -X POST "$BASE2/api/sessions/$SID2/rows" \
            -d "{\"relation\":\"Children\",\"values\":[\"$N\",\"Kid$N\",\"9\",\"800\",\"801\",\"d9\"]}" \
            >/dev/null || fail "capacity row insert $N failed"
        N=$((N + 1))
    done
    curl -sf -X POST "$BASE2/api/sessions/$SID2/walk" \
        -d '{"from":"Children","to":"PhoneDir"}' >/dev/null || fail "capacity walk failed"
}

# Without a spill directory, an over-budget computation answers 413 and
# the envelope names the remedy: spill is "disabled".
start_server2 -max-bytes 192
new_session2
BODY413=$(mktemp)
CODE=$(curl -s -o "$BODY413" -w '%{http_code}' -X POST "$BASE2/api/sessions/$SID2/corr" \
    -d '{"spec":"Children.ID -> Kids.ID"}')
[ "$CODE" = "413" ] || { cat "$BODY413" >&2; fail "over-budget corr answered $CODE, want 413"; }
grep -q '"spill": "disabled"' "$BODY413" || { cat "$BODY413" >&2; fail "413 envelope does not name spill state disabled"; }
rm -f "$BODY413"
stop_server2

# Reference run: the same workload with no budget at all.
start_server2
new_session2
drive_capacity
REF=$(curl -sf "$BASE2/api/sessions/$SID2/examples") || fail "reference examples failed"
stop_server2

# Spill run: a resident cap the workload exceeds, plus a spill dir and
# an explicit recursion depth for oversized partitions. The same
# requests must answer 200 — not 413 — with byte-identical results.
start_server2 -max-bytes 131072 -spill-dir "$SDIR" -spill-recursion-depth 3
new_session2
drive_capacity
BODYSP=$(mktemp)
CODE=$(curl -s -o "$BODYSP" -w '%{http_code}' "$BASE2/api/sessions/$SID2/examples")
[ "$CODE" = "200" ] || { cat "$BODYSP" >&2; fail "spill-backed examples answered $CODE, want 200"; }
GOT=$(cat "$BODYSP")
rm -f "$BODYSP"
[ "$REF" = "$GOT" ] || fail "spill-backed examples differ from the unlimited reference"
OUT=$(curl -sf "$BASE2/metrics") || fail "capacity metrics scrape failed"
printf '%s\n' "$OUT" | grep -q '^clio_spill_partitions_total [1-9]' ||
    fail "spill leg never spilled: clio_spill_partitions_total not incremented"
OUT=$(curl -sf "$BASE2/statusz") || fail "capacity statusz failed"
case "$OUT" in *'"spill_aborts"'*) ;; *) fail "statusz missing spill block: $OUT" ;; esac
case "$OUT" in *'"recursions"'*) ;; *) fail "statusz missing spill recursion counter: $OUT" ;; esac

# Orphan sweep: kill -9 the spilling server, plant a stale partition
# file as a crash would leave it, and verify the restarted server
# removes it on boot.
kill -9 "$PID2"
wait "$PID2" 2>/dev/null || true
: >"$SDIR/clio-spill-77777.part"
start_server2 -max-bytes 131072 -spill-dir "$SDIR"
LEFT=$(ls "$SDIR"/clio-spill-*.part 2>/dev/null | wc -l)
[ "$LEFT" -eq 0 ] || fail "orphaned spill files not swept on boot ($LEFT left)"
stop_server2

# Graceful shutdown: SIGTERM must drain and exit zero.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        fail "server did not shut down after SIGTERM"
    fi
    sleep 0.1
done
wait "$PID" || fail "server exited non-zero"
trap 'rm -rf "$LOG" "$LOG2" "$BIN" "$JDIR" "$SDIR"' EXIT

echo "serve-smoke: ok"
