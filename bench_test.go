package clio_test

// testing.B benchmark families, one per experiment in EXPERIMENTS.md
// (E1..E8) plus the paper-database microbenchmarks. cmd/cliobench
// runs the same sweeps with markdown output; these integrate with
// `go test -bench`.

import (
	"context"
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/datagen"
	"clio/internal/discovery"
	"clio/internal/expr"
	"clio/internal/fd"
	"clio/internal/paperdb"
	"clio/internal/relation"
	"clio/internal/value"
)

// --- E1: full disjunction algorithms ---

func chainCase(n, rows int) datagen.Case {
	return datagen.Chain(datagen.ChainSpec{
		Relations: n, Rows: rows, KeySpace: rows / 2, MatchProb: 0.85, Seed: 42,
	})
}

func BenchmarkFullDisjunctionSubgraph(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		c := chainCase(n, 100)
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fd.FullDisjunction(context.Background(), c.Graph, c.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFullDisjunctionOuterJoin(b *testing.B) {
	for _, n := range []int{2, 4, 6} {
		c := chainCase(n, 100)
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fd.FullDisjunctionOuterJoin(context.Background(), c.Graph, c.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: subsumption removal ---

func subsumptionInput(rows int) *relation.Relation {
	s := relation.NewScheme("R.a", "R.b", "R.c", "R.d", "R.e", "R.f")
	r := relation.New("R", s)
	seed := uint64(1)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < rows; i++ {
		vals := make([]value.Value, 6)
		for j := range vals {
			if next(3) == 0 {
				vals[j] = value.Null
			} else {
				vals[j] = value.Int(int64(next(4)))
			}
		}
		r.AddValues(vals...)
	}
	return r
}

func BenchmarkMinimumUnionNaive(b *testing.B) {
	for _, n := range []int{200, 800} {
		r := subsumptionInput(n).Distinct()
		b.Run(fmt.Sprintf("rows%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				relation.RemoveSubsumedNaive(r)
			}
		})
	}
}

func BenchmarkMinimumUnionPartitioned(b *testing.B) {
	for _, n := range []int{200, 800} {
		r := subsumptionInput(n)
		b.Run(fmt.Sprintf("rows%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				relation.RemoveSubsumed(r)
			}
		})
	}
}

// --- E3: sufficient illustration selection ---

func BenchmarkIllustrationSelect(b *testing.B) {
	for _, rows := range []int{100, 400} {
		c := chainCase(4, rows)
		c.Mapping.TargetFilters = []expr.Expr{expr.MustParse("T.vR0 IS NOT NULL")}
		dg, err := fd.Compute(context.Background(), c.Graph, c.Instance)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				full, err := core.ExamplesOn(context.Background(), c.Mapping, c.Instance, dg)
				if err != nil {
					b.Fatal(err)
				}
				core.SelectSufficient(context.Background(), c.Mapping, full)
			}
		})
	}
}

// --- E4: walk enumeration ---

func BenchmarkDataWalkPaths(b *testing.B) {
	for _, rels := range []int{10, 20} {
		k := datagen.Knowledge(datagen.KnowledgeSpec{Relations: rels, EdgesPerNode: 3, Seed: 9})
		end := fmt.Sprintf("R%d", rels-1)
		b.Run(fmt.Sprintf("rels%d", rels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Paths("R0", end, 3)
			}
		})
	}
}

func BenchmarkDataWalkOperator(b *testing.B) {
	in := paperdb.Instance()
	k := discovery.BuildKnowledge(context.Background(), in, true, 1)
	m := paperdb.Figure6G()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DataWalk(context.Background(), m, k, "Children", "SBPS", 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: chase lookup ---

func BenchmarkChaseIndexed(b *testing.B) {
	in := datagen.WideInstance(4, 5, 2000, 1000, 3)
	ix := discovery.BuildValueIndex(context.Background(), in)
	v := value.Int(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Occurrences(v)
	}
}

func BenchmarkChaseScan(b *testing.B) {
	in := datagen.WideInstance(4, 5, 2000, 1000, 3)
	v := value.Int(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discovery.OccurrencesScan(in, v)
	}
}

func BenchmarkChaseOperator(b *testing.B) {
	in := paperdb.Instance()
	ix := discovery.BuildValueIndex(context.Background(), in)
	m := paperdb.Figure6G()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DataChase(context.Background(), m, ix, "Children.ID", value.String("002")); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: mapping evaluation ---

func BenchmarkMappingEvalDG(b *testing.B) {
	for _, rows := range []int{100, 400} {
		c := chainCase(4, rows)
		c.Mapping.SourceFilters = []expr.Expr{expr.MustParse("R0.k IS NOT NULL")}
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Mapping.Evaluate(c.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMappingEvalLeftJoin(b *testing.B) {
	for _, rows := range []int{100, 400} {
		c := chainCase(4, rows)
		c.Mapping.SourceFilters = []expr.Expr{expr.MustParse("R0.k IS NOT NULL")}
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Mapping.EvaluateViaLeftJoins("R0", c.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: evolution ---

func BenchmarkEvolution(b *testing.B) {
	full := chainCase(4, 200)
	old := full.Mapping.Clone()
	old.Graph = full.Graph.Induced(full.Graph.Nodes()[:3])
	old.Corrs = old.Corrs[:3]
	oldDG, err := fd.Compute(context.Background(), old.Graph, full.Instance)
	if err != nil {
		b.Fatal(err)
	}
	oldIll, err := core.SufficientIllustration(context.Background(), old, full.Instance)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvolveFrom(context.Background(), oldIll, oldDG, full.Mapping, full.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvolutionRecompute(b *testing.B) {
	full := chainCase(4, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SufficientIllustration(context.Background(), full.Mapping, full.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: discovery ---

func BenchmarkDiscoveryINDs(b *testing.B) {
	for _, rels := range []int{4, 8} {
		in := datagen.WideInstance(rels, 4, 500, 126, 5)
		b.Run(fmt.Sprintf("rels%d", rels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				discovery.DiscoverINDs(context.Background(), in, 0.95)
			}
		})
	}
}

func BenchmarkDiscoveryValueIndex(b *testing.B) {
	in := datagen.WideInstance(4, 5, 2000, 1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discovery.BuildValueIndex(context.Background(), in)
	}
}

// --- Paper database end-to-end ---

func BenchmarkPaperSection2Evaluate(b *testing.B) {
	in := paperdb.Instance()
	m := paperdb.Section2Mapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperSufficientIllustration(b *testing.B) {
	in := paperdb.Instance()
	m := paperdb.Example315Mapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SufficientIllustration(context.Background(), m, in); err != nil {
			b.Fatal(err)
		}
	}
}
